#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "tensor/kernels.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__)
#include <immintrin.h>
#define METADSE_QUANT_AVX512 1
#if defined(__AVX512VNNI__)
#define METADSE_QUANT_VNNI 1
#endif
#endif

namespace metadse::tensor::quant {

const char* to_string(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kBf16: return "bf16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

bool parse_precision(const std::string& s, Precision* out) {
  if (s == "fp32") {
    *out = Precision::kFp32;
  } else if (s == "bf16") {
    *out = Precision::kBf16;
  } else if (s == "int8") {
    *out = Precision::kInt8;
  } else {
    return false;
  }
  return true;
}

namespace {
thread_local constinit Precision g_precision = Precision::kFp32;
}  // namespace

Precision PrecisionMode::mode() { return g_precision; }
void PrecisionMode::set_mode(Precision p) { g_precision = p; }

// -- bf16 --------------------------------------------------------------------

void bf16_encode(const float* src, size_t n, uint16_t* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = bf16_from_f32(src[i]);
}

void bf16_decode(const uint16_t* src, size_t n, float* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = f32_from_bf16(src[i]);
}

void bf16_pack_weight(const float* w, size_t K, size_t N, Bf16Weight* out) {
  out->K = K;
  out->N = N;
  out->w.resize(K * N);
  bf16_encode(w, K * N, out->w.data());
}

// -- int8 --------------------------------------------------------------------

float absmax(const float* x, size_t n) {
  float m = 0.0F;
  for (size_t i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}

void quantize_weight_kn(const float* w, size_t K, size_t N,
                        QuantizedWeight* out) {
  out->K = K;
  out->N = N;
  out->K4 = (K + 3) / 4;
  out->scale = scale_for(absmax(w, K * N));
  out->packed.assign(out->K4 * N * 4, 0);
  out->col_comp.assign(N, 0);
  const float inv = 1.0F / out->scale;
  for (size_t k = 0; k < K; ++k) {
    for (size_t n = 0; n < N; ++n) {
      const long q = std::lrintf(w[k * N + n] * inv);
      const int8_t qc =
          static_cast<int8_t>(std::clamp<long>(q, -127, 127));
      out->packed[(k / 4) * N * 4 + n * 4 + (k % 4)] = qc;
      out->col_comp[n] += 128 * static_cast<int32_t>(qc);
    }
  }
}

void quantize_act_u8(const float* a, size_t M, size_t K, float scale,
                     uint8_t* out, size_t ldq) {
  const float inv = 1.0F / scale;
#if defined(METADSE_QUANT_AVX512)
  // 16 floats/iteration: scale, round-to-nearest-even (vcvtps2dq default
  // mode, same result as lrintf under the default rounding mode), clamp,
  // +128 offset, narrow to u8.
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i vlo = _mm512_set1_epi32(-127);
  const __m512i vhi = _mm512_set1_epi32(127);
  const __m512i voff = _mm512_set1_epi32(128);
  for (size_t m = 0; m < M; ++m) {
    const float* row = a + m * K;
    uint8_t* qrow = out + m * ldq;
    size_t k = 0;
    for (; k + 16 <= K; k += 16) {
      const __m512 x = _mm512_mul_ps(_mm512_loadu_ps(row + k), vinv);
      __m512i q = _mm512_cvtps_epi32(x);
      q = _mm512_add_epi32(_mm512_min_epi32(_mm512_max_epi32(q, vlo), vhi),
                           voff);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(qrow + k),
                       _mm512_cvtepi32_epi8(q));
    }
    for (; k < K; ++k) {
      const long q = std::lrintf(row[k] * inv);
      qrow[k] = static_cast<uint8_t>(std::clamp<long>(q, -127, 127) + 128);
    }
    for (k = K; k < ldq; ++k) qrow[k] = 128;  // zero after offset
  }
#else
  for (size_t m = 0; m < M; ++m) {
    const float* row = a + m * K;
    uint8_t* qrow = out + m * ldq;
    for (size_t k = 0; k < K; ++k) {
      const long q = std::lrintf(row[k] * inv);
      qrow[k] = static_cast<uint8_t>(std::clamp<long>(q, -127, 127) + 128);
    }
    for (size_t k = K; k < ldq; ++k) qrow[k] = 128;  // zero after offset
  }
#endif
}

namespace {

/// Applies run_gemm's per-row epilogue rounding steps to one output row.
inline void epilogue_row(float* prow, const float* bias, const float* rrow,
                         int epi, size_t N) {
  if (epi == 1) {
    for (size_t j = 0; j < N; ++j) prow[j] = prow[j] + bias[j];
  } else if (epi == 2) {
    for (size_t j = 0; j < N; ++j) {
      const float t = prow[j] + bias[j];
      prow[j] = rrow[j] + t;
    }
  } else if (epi == 3) {
    gelu_bias_row_fast(prow, bias, N);
  }
}

#if defined(METADSE_QUANT_AVX512)

/// kern::fast_expf, one vector at a time: range-reduced degree-5 polynomial
/// with the same coefficients; vroundps replaces the magic-constant round
/// (both are round-to-nearest-even).
inline __m512 vexp512(__m512 x) {
  const __m512 log2e = _mm512_set1_ps(1.442695040888963F);
  const __m512 ln2hi = _mm512_set1_ps(0.693359375F);
  const __m512 ln2lo = _mm512_set1_ps(-2.12194440e-4F);
  x = _mm512_min_ps(_mm512_set1_ps(88.3762626647949F),
                    _mm512_max_ps(_mm512_set1_ps(-87.3365478515625F), x));
  const __m512 n = _mm512_roundscale_ps(_mm512_mul_ps(x, log2e),
                                        _MM_FROUND_TO_NEAREST_INT |
                                            _MM_FROUND_NO_EXC);
  x = _mm512_fnmadd_ps(n, ln2hi, x);
  x = _mm512_fnmadd_ps(n, ln2lo, x);
  __m512 p = _mm512_set1_ps(1.9875691500e-4F);
  p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(1.3981999507e-3F));
  p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(8.3334519073e-3F));
  p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(4.1665795894e-2F));
  p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(1.6666665459e-1F));
  p = _mm512_fmadd_ps(p, x, _mm512_set1_ps(5.0000001201e-1F));
  const __m512 r =
      _mm512_add_ps(_mm512_fmadd_ps(p, _mm512_mul_ps(x, x), x),
                    _mm512_set1_ps(1.0F));
  const __m512i ni = _mm512_cvtps_epi32(n);
  const __m512i pow2 = _mm512_slli_epi32(
      _mm512_add_epi32(ni, _mm512_set1_epi32(127)), 23);
  return _mm512_mul_ps(r, _mm512_castsi512_ps(pow2));
}

/// 1/x via rcp14 plus one Newton-Raphson step (~0.5 ulp): vdivps has ~10x
/// worse throughput and would dominate the GELU/softmax epilogues.
inline __m512 vrecip512(__m512 x) {
  const __m512 r = _mm512_rcp14_ps(x);
  return _mm512_fmadd_ps(_mm512_fnmadd_ps(x, r, _mm512_set1_ps(1.0F)), r, r);
}

/// kern::gelu_fwd vectorized: 0.5x(1 + tanh(c(x + a x^3))) with tanh through
/// vexp512, matching the scalar expression tree (the divide becomes a
/// refined-reciprocal multiply).
inline __m512 vgelu512(__m512 x) {
  const __m512 c = _mm512_set1_ps(kern::kGeluC);
  const __m512 aa = _mm512_set1_ps(kern::kGeluA);
  const __m512 one = _mm512_set1_ps(1.0F);
  const __m512 two = _mm512_set1_ps(2.0F);
  const __m512 half = _mm512_set1_ps(0.5F);
  const __m512 x2 = _mm512_mul_ps(x, x);
  const __m512 u =
      _mm512_mul_ps(c, _mm512_fmadd_ps(_mm512_mul_ps(aa, x2), x, x));
  const __m512 e = vexp512(_mm512_mul_ps(two, u));
  const __m512 t = _mm512_sub_ps(
      one, _mm512_mul_ps(two, vrecip512(_mm512_add_ps(e, one))));
  return _mm512_mul_ps(_mm512_mul_ps(half, x), _mm512_add_ps(one, t));
}

#endif  // METADSE_QUANT_AVX512

}  // namespace

void gelu_bias_row_fast(float* row, const float* bias, size_t n) {
#if defined(METADSE_QUANT_AVX512)
  size_t j = 0;
  for (; j + 16 <= n; j += 16) {
    const __m512 x =
        _mm512_add_ps(_mm512_loadu_ps(row + j), _mm512_loadu_ps(bias + j));
    _mm512_storeu_ps(row + j, vgelu512(x));
  }
  if (j < n) {
    const __mmask16 mk = static_cast<__mmask16>((1U << (n - j)) - 1U);
    const __m512 x = _mm512_add_ps(_mm512_maskz_loadu_ps(mk, row + j),
                                   _mm512_maskz_loadu_ps(mk, bias + j));
    _mm512_mask_storeu_ps(row + j, mk, vgelu512(x));
  }
#else
  for (size_t j = 0; j < n; ++j) row[j] = kern::gelu_fwd(row[j] + bias[j]);
#endif
}

void layer_norm_affine_rows_fast(const float* x, const float* gamma,
                                 const float* beta, float* o, size_t rows,
                                 size_t n, float eps) {
#if defined(METADSE_QUANT_AVX512)
  const float invn = 1.0F / static_cast<float>(n);
  for (size_t r = 0; r < rows; ++r) {
    const float* px = x + r * n;
    float* po = o + r * n;
    __m512 vsum = _mm512_setzero_ps();
    size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      vsum = _mm512_add_ps(vsum, _mm512_loadu_ps(px + j));
    }
    __mmask16 tail = 0;
    if (j < n) {
      tail = static_cast<__mmask16>((1U << (n - j)) - 1U);
      vsum = _mm512_add_ps(vsum, _mm512_maskz_loadu_ps(tail, px + j));
    }
    const float mu = _mm512_reduce_add_ps(vsum) * invn;
    const __m512 vmu = _mm512_set1_ps(mu);
    __m512 vvar = _mm512_setzero_ps();
    for (j = 0; j + 16 <= n; j += 16) {
      const __m512 d = _mm512_sub_ps(_mm512_loadu_ps(px + j), vmu);
      vvar = _mm512_fmadd_ps(d, d, vvar);
    }
    if (j < n) {
      const __m512 d = _mm512_maskz_sub_ps(tail, _mm512_maskz_loadu_ps(
                                                     tail, px + j), vmu);
      vvar = _mm512_fmadd_ps(d, d, vvar);
    }
    const float var = _mm512_reduce_add_ps(vvar) * invn;
    const __m512 vis = _mm512_set1_ps(1.0F / std::sqrt(var + eps));
    for (j = 0; j + 16 <= n; j += 16) {
      const __m512 y = _mm512_mul_ps(
          _mm512_sub_ps(_mm512_loadu_ps(px + j), vmu), vis);
      _mm512_storeu_ps(
          po + j, _mm512_fmadd_ps(y, _mm512_loadu_ps(gamma + j),
                                  _mm512_loadu_ps(beta + j)));
    }
    if (j < n) {
      const __m512 y = _mm512_mul_ps(
          _mm512_sub_ps(_mm512_maskz_loadu_ps(tail, px + j), vmu), vis);
      _mm512_mask_storeu_ps(
          po + j, tail,
          _mm512_fmadd_ps(y, _mm512_maskz_loadu_ps(tail, gamma + j),
                          _mm512_maskz_loadu_ps(tail, beta + j)));
    }
  }
#else
  for (size_t r = 0; r < rows; ++r) {
    kern::layer_norm_affine_row(x + r * n, gamma, beta, o + r * n, nullptr,
                                n, eps);
  }
#endif
}

namespace {

constexpr size_t kFattnMaxS = 64;   // mirrors the planner's kAttnMaxS
constexpr size_t kFattnMaxDh = 32;  // mirrors the planner's kAttnMaxDh

#if defined(METADSE_QUANT_AVX512)

constexpr size_t kLaneW = 64;  // tile row stride: kFattnMaxS lanes

/// One attention group in lane-transposed form, MV = compile-time count of
/// 16-query-row vectors (ceil(S/16)). Putting the m dimension in vector
/// lanes turns every softmax reduction (row max, denominator, mask mass)
/// into an elementwise vector op across the s loop — no horizontal
/// reductions, no per-row serial chains — and the normalizations fold into
/// one refined-reciprocal multiply applied by the ctx epilogue. Tail lanes
/// beyond S are zero-packed so they stay finite, and nothing reads them
/// back. All accumulation orders are fixed per element, so the result is
/// identical at any thread count; rounding differs from the eager kernels,
/// which the tier's rank-correlation contract covers.
template <int MV, int DB>
void fattn_lanes_group(size_t S, size_t Dh, size_t D, float inv_scale,
                       float eps, const float* qs, const float* ks,
                       const float* vs, const float* mt, float* os,
                       float* qt, float* et, float* ot) {
  const size_t lanes = MV * 16;
  for (size_t d = 0; d < Dh; ++d) {
    float* row = qt + d * kLaneW;
    for (size_t m = 0; m < S; ++m) row[m] = qs[m * D + d];
    for (size_t m = S; m < lanes; ++m) row[m] = 0.0F;
  }
  // scores columns: et[s][m] = (q[m] . k[s]) / scale, tracking the lanewise
  // running max
  const __m512 vinv = _mm512_set1_ps(inv_scale);
  __m512 vmax[MV];
  for (int i = 0; i < MV; ++i) {
    vmax[i] = _mm512_set1_ps(-std::numeric_limits<float>::infinity());
  }
  for (size_t s = 0; s < S; ++s) {
    __m512 acc[MV];
    for (int i = 0; i < MV; ++i) acc[i] = _mm512_setzero_ps();
    const float* kr = ks + s * D;
    for (size_t d = 0; d < Dh; ++d) {
      const __m512 kb = _mm512_set1_ps(kr[d]);
      for (int i = 0; i < MV; ++i) {
        acc[i] = _mm512_fmadd_ps(kb, _mm512_load_ps(qt + d * kLaneW + i * 16),
                                 acc[i]);
      }
    }
    float* er = et + s * kLaneW;
    for (int i = 0; i < MV; ++i) {
      acc[i] = _mm512_mul_ps(acc[i], vinv);
      vmax[i] = _mm512_max_ps(vmax[i], acc[i]);
      _mm512_store_ps(er + i * 16, acc[i]);
    }
  }
  // exp tile + normalizer: unmasked out = e/den; masked out =
  // (e*mk/den)/(mass+eps) with mass = sum(e*mk)/den — both collapse into a
  // single per-lane factor rnorm applied after ctx.
  __m512 rnorm[MV];
  {
    __m512 vden[MV];
    for (int i = 0; i < MV; ++i) vden[i] = _mm512_setzero_ps();
    if (mt == nullptr) {
      for (size_t s = 0; s < S; ++s) {
        float* er = et + s * kLaneW;
        for (int i = 0; i < MV; ++i) {
          const __m512 e =
              vexp512(_mm512_sub_ps(_mm512_load_ps(er + i * 16), vmax[i]));
          _mm512_store_ps(er + i * 16, e);
          vden[i] = _mm512_add_ps(vden[i], e);
        }
      }
      for (int i = 0; i < MV; ++i) rnorm[i] = vrecip512(vden[i]);
    } else {
      __m512 vmass[MV];
      for (int i = 0; i < MV; ++i) vmass[i] = _mm512_setzero_ps();
      for (size_t s = 0; s < S; ++s) {
        float* er = et + s * kLaneW;
        const float* mr = mt + s * kLaneW;
        for (int i = 0; i < MV; ++i) {
          const __m512 e =
              vexp512(_mm512_sub_ps(_mm512_load_ps(er + i * 16), vmax[i]));
          const __m512 em = _mm512_mul_ps(e, _mm512_load_ps(mr + i * 16));
          _mm512_store_ps(er + i * 16, em);
          vden[i] = _mm512_add_ps(vden[i], e);
          vmass[i] = _mm512_add_ps(vmass[i], em);
        }
      }
      for (int i = 0; i < MV; ++i) {
        const __m512 rden = vrecip512(vden[i]);
        const __m512 mass = _mm512_mul_ps(vmass[i], rden);
        rnorm[i] = _mm512_mul_ps(
            rden, vrecip512(_mm512_add_ps(mass, _mm512_set1_ps(eps))));
      }
    }
  }
  // ctx columns, head-dim blocked by DB: ot[d][m] = rnorm[m] * sum_s
  // et[s][m] * v[s][d]. DB=8 covers the paper head dim in one pass over the
  // exp tile; wider MV counts drop to DB=4 to stay inside the register file.
  for (size_t d0 = 0; d0 < Dh; d0 += DB) {
    __m512 cacc[DB][MV];
    for (int j = 0; j < DB; ++j) {
      for (int i = 0; i < MV; ++i) cacc[j][i] = _mm512_setzero_ps();
    }
    for (size_t s = 0; s < S; ++s) {
      const float* er = et + s * kLaneW;
      const float* vr = vs + s * D + d0;
      __m512 pv[MV];
      for (int i = 0; i < MV; ++i) pv[i] = _mm512_load_ps(er + i * 16);
      for (int j = 0; j < DB; ++j) {
        // zero feed for the (rare) Dh % DB tail keeps the block loop branch-
        // free in registers without reading past the head's columns
        const __m512 vb =
            _mm512_set1_ps(d0 + j < Dh ? vr[j] : 0.0F);
        for (int i = 0; i < MV; ++i) {
          cacc[j][i] = _mm512_fmadd_ps(vb, pv[i], cacc[j][i]);
        }
      }
    }
    for (int j = 0; j < DB && d0 + j < Dh; ++j) {
      float* orow = ot + (d0 + j) * kLaneW;
      for (int i = 0; i < MV; ++i) {
        _mm512_store_ps(orow + i * 16, _mm512_mul_ps(cacc[j][i], rnorm[i]));
      }
    }
  }
  for (size_t m = 0; m < S; ++m) {
    float* orow = os + m * D;
    for (size_t d = 0; d < Dh; ++d) orow[d] = ot[d * kLaneW + m];
  }
}

#endif  // METADSE_QUANT_AVX512

}  // namespace

void fattn_rows_fast(size_t S, size_t Dh, size_t D, size_t H, float scale,
                     float eps, const float* q, const float* k,
                     const float* v, const float* mask, float* o, size_t g0,
                     size_t g1) {
  const float inv_scale = 1.0F / scale;
#if defined(METADSE_QUANT_AVX512)
  alignas(64) float qt[kFattnMaxDh * kLaneW];
  alignas(64) float et[kFattnMaxS * kLaneW];
  alignas(64) float ot[kFattnMaxDh * kLaneW];
  alignas(64) float mt[kFattnMaxS * kLaneW];
  const size_t mv = (S + 15) / 16;
  const size_t lanes = mv * 16;
  if (mask != nullptr) {
    // the mask is shared by every group: transpose it into lane layout once
    for (size_t s = 0; s < S; ++s) {
      float* row = mt + s * kLaneW;
      for (size_t m = 0; m < S; ++m) row[m] = mask[m * S + s];
      for (size_t m = S; m < lanes; ++m) row[m] = 0.0F;
    }
  }
  const float* mtp = mask != nullptr ? mt : nullptr;
  for (size_t g = g0; g < g1; ++g) {
    const size_t bb = g / H;
    const size_t h = g % H;
    const float* qs = q + bb * S * D + h * Dh;
    const float* ks = k + bb * S * D + h * Dh;
    const float* vs = v + bb * S * D + h * Dh;
    float* os = o + bb * S * D + h * Dh;
    switch (mv) {
      case 1:
        fattn_lanes_group<1, 8>(S, Dh, D, inv_scale, eps, qs, ks, vs, mtp,
                                os, qt, et, ot);
        break;
      case 2:
        fattn_lanes_group<2, 8>(S, Dh, D, inv_scale, eps, qs, ks, vs, mtp,
                                os, qt, et, ot);
        break;
      case 3:
        fattn_lanes_group<3, 4>(S, Dh, D, inv_scale, eps, qs, ks, vs, mtp,
                                os, qt, et, ot);
        break;
      default:
        fattn_lanes_group<4, 4>(S, Dh, D, inv_scale, eps, qs, ks, vs, mtp,
                                os, qt, et, ot);
        break;
    }
  }
#else
  float kt[kFattnMaxDh * kFattnMaxS];
  float sc[kFattnMaxS * kFattnMaxS];
  for (size_t g = g0; g < g1; ++g) {
    const size_t bb = g / H;
    const size_t h = g % H;
    const float* qs = q + bb * S * D + h * Dh;
    const float* ks = k + bb * S * D + h * Dh;
    const float* vs = v + bb * S * D + h * Dh;
    float* os = o + bb * S * D + h * Dh;
    for (size_t s = 0; s < S; ++s) {
      for (size_t d = 0; d < Dh; ++d) kt[d * S + s] = ks[s * D + d];
    }
    for (size_t m = 0; m < S; ++m) {
      const float* qr = qs + m * D;
      float* pom = sc + m * S;
      for (size_t n = 0; n < S; ++n) {
        float acc = 0.0F;
        for (size_t d = 0; d < Dh; ++d) acc += qr[d] * kt[d * S + n];
        pom[n] = acc * inv_scale;
      }
      kern::softmax_row(pom, pom, S);
      if (mask != nullptr) {
        kern::masked_renorm_row(pom, mask + m * S, pom, S, eps);
      }
    }
    for (size_t m = 0; m < S; ++m) {
      const float* pr = sc + m * S;
      float* orow = os + m * D;
      for (size_t d = 0; d < Dh; ++d) {
        float acc = 0.0F;
        for (size_t s = 0; s < S; ++s) acc += pr[s] * vs[s * D + d];
        orow[d] = acc;
      }
    }
  }
#endif
}

void gemm_u8s8(const uint8_t* aq, size_t ldq, const QuantizedWeight& w,
               float dq, const float* bias, const float* res, size_t ldr,
               int epi, float* o, size_t m0, size_t m1) {
  const size_t N = w.N;
  const size_t K4 = w.K4;
  size_t m = m0;
#if defined(METADSE_QUANT_VNNI)
  // 4-row blocks per 16-column tile: one weight load feeds four independent
  // dpbusd accumulator chains, hiding the VNNI latency that bounds the
  // single-row form.
  for (; m + 4 <= m1; m += 4) {
    const uint8_t* ar0 = aq + m * ldq;
    const uint8_t* ar1 = ar0 + ldq;
    const uint8_t* ar2 = ar1 + ldq;
    const uint8_t* ar3 = ar2 + ldq;
    float* pr0 = o + m * N;
    size_t n = 0;
    for (; n + 16 <= N; n += 16) {
      __m512i a0 = _mm512_setzero_si512();
      __m512i a1 = _mm512_setzero_si512();
      __m512i a2 = _mm512_setzero_si512();
      __m512i a3 = _mm512_setzero_si512();
      const int8_t* wp = w.packed.data() + n * 4;
      for (size_t k4 = 0; k4 < K4; ++k4) {
        const __m512i wv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(wp + k4 * N * 4));
        uint32_t g0v;
        uint32_t g1v;
        uint32_t g2v;
        uint32_t g3v;
        std::memcpy(&g0v, ar0 + k4 * 4, sizeof(g0v));
        std::memcpy(&g1v, ar1 + k4 * 4, sizeof(g1v));
        std::memcpy(&g2v, ar2 + k4 * 4, sizeof(g2v));
        std::memcpy(&g3v, ar3 + k4 * 4, sizeof(g3v));
        a0 = _mm512_dpbusd_epi32(
            a0, _mm512_set1_epi32(static_cast<int32_t>(g0v)), wv);
        a1 = _mm512_dpbusd_epi32(
            a1, _mm512_set1_epi32(static_cast<int32_t>(g1v)), wv);
        a2 = _mm512_dpbusd_epi32(
            a2, _mm512_set1_epi32(static_cast<int32_t>(g2v)), wv);
        a3 = _mm512_dpbusd_epi32(
            a3, _mm512_set1_epi32(static_cast<int32_t>(g3v)), wv);
      }
      const __m512i comp = _mm512_loadu_si512(
          reinterpret_cast<const void*>(w.col_comp.data() + n));
      const __m512 vdq = _mm512_set1_ps(dq);
      _mm512_storeu_ps(pr0 + n,
                       _mm512_mul_ps(_mm512_cvtepi32_ps(
                                         _mm512_sub_epi32(a0, comp)),
                                     vdq));
      _mm512_storeu_ps(pr0 + N + n,
                       _mm512_mul_ps(_mm512_cvtepi32_ps(
                                         _mm512_sub_epi32(a1, comp)),
                                     vdq));
      _mm512_storeu_ps(pr0 + 2 * N + n,
                       _mm512_mul_ps(_mm512_cvtepi32_ps(
                                         _mm512_sub_epi32(a2, comp)),
                                     vdq));
      _mm512_storeu_ps(pr0 + 3 * N + n,
                       _mm512_mul_ps(_mm512_cvtepi32_ps(
                                         _mm512_sub_epi32(a3, comp)),
                                     vdq));
    }
    for (; n < N; ++n) {
      const int8_t* wp = w.packed.data() + n * 4;
      int32_t acc[4] = {0, 0, 0, 0};
      for (size_t k4 = 0; k4 < K4; ++k4) {
        const int8_t* wg = wp + k4 * N * 4;
        const uint8_t* rows[4] = {ar0 + k4 * 4, ar1 + k4 * 4, ar2 + k4 * 4,
                                  ar3 + k4 * 4};
        for (int r = 0; r < 4; ++r) {
          acc[r] += static_cast<int32_t>(rows[r][0]) * wg[0] +
                    static_cast<int32_t>(rows[r][1]) * wg[1] +
                    static_cast<int32_t>(rows[r][2]) * wg[2] +
                    static_cast<int32_t>(rows[r][3]) * wg[3];
        }
      }
      for (int r = 0; r < 4; ++r) {
        pr0[r * N + n] = static_cast<float>(acc[r] - w.col_comp[n]) * dq;
      }
    }
    for (int r = 0; r < 4; ++r) {
      epilogue_row(pr0 + r * N, bias,
                   res != nullptr ? res + (m + r) * ldr : nullptr, epi, N);
    }
  }
#endif
  for (; m < m1; ++m) {
    const uint8_t* arow = aq + m * ldq;
    float* prow = o + m * N;
    size_t n = 0;
#if defined(METADSE_QUANT_VNNI)
    for (; n + 16 <= N; n += 16) {
      __m512i acc = _mm512_setzero_si512();
      const int8_t* wp = w.packed.data() + n * 4;
      for (size_t k4 = 0; k4 < K4; ++k4) {
        uint32_t a4;
        std::memcpy(&a4, arow + k4 * 4, sizeof(a4));
        const __m512i av = _mm512_set1_epi32(static_cast<int32_t>(a4));
        const __m512i wv = _mm512_loadu_si512(
            reinterpret_cast<const void*>(wp + k4 * N * 4));
        acc = _mm512_dpbusd_epi32(acc, av, wv);
      }
      const __m512i comp = _mm512_loadu_si512(
          reinterpret_cast<const void*>(w.col_comp.data() + n));
      const __m512 deq = _mm512_mul_ps(
          _mm512_cvtepi32_ps(_mm512_sub_epi32(acc, comp)),
          _mm512_set1_ps(dq));
      _mm512_storeu_ps(prow + n, deq);
    }
#endif
    for (; n < N; ++n) {
      int32_t acc = 0;
      const int8_t* wp = w.packed.data() + n * 4;
      for (size_t k4 = 0; k4 < K4; ++k4) {
        const uint8_t* ag = arow + k4 * 4;
        const int8_t* wg = wp + k4 * N * 4;
        acc += static_cast<int32_t>(ag[0]) * wg[0] +
               static_cast<int32_t>(ag[1]) * wg[1] +
               static_cast<int32_t>(ag[2]) * wg[2] +
               static_cast<int32_t>(ag[3]) * wg[3];
      }
      prow[n] = static_cast<float>(acc - w.col_comp[n]) * dq;
    }
    epilogue_row(prow, bias, res != nullptr ? res + m * ldr : nullptr, epi, N);
  }
}

void gemm_bf16(const float* a, const Bf16Weight& w, const float* bias,
               const float* res, size_t ldr, int epi, float* o, size_t m0,
               size_t m1) {
  const size_t K = w.K;
  const size_t N = w.N;
  size_t m = m0;
#if defined(METADSE_QUANT_AVX512)
  // 4-row blocks per 16-column tile: each bf16 weight chunk is widened to
  // fp32 once and feeds four FMA chains. Every output element accumulates in
  // ascending-k order, so results are partition-independent.
  const auto widen = [](const uint16_t* p, __mmask16 mk16) {
    return _mm512_castsi512_ps(_mm512_slli_epi32(
        _mm512_cvtepu16_epi32(_mm256_maskz_loadu_epi16(mk16, p)), 16));
  };
  for (; m + 4 <= m1; m += 4) {
    const float* ar0 = a + m * K;
    const float* ar1 = ar0 + K;
    const float* ar2 = ar1 + K;
    const float* ar3 = ar2 + K;
    float* pr0 = o + m * N;
    for (size_t n = 0; n < N; n += 16) {
      const size_t wdt = std::min<size_t>(16, N - n);
      const __mmask16 mk16 =
          static_cast<__mmask16>(wdt == 16 ? 0xFFFFU : (1U << wdt) - 1U);
      __m512 a0 = _mm512_setzero_ps();
      __m512 a1 = _mm512_setzero_ps();
      __m512 a2 = _mm512_setzero_ps();
      __m512 a3 = _mm512_setzero_ps();
      for (size_t k = 0; k < K; ++k) {
        const __m512 wv = widen(w.w.data() + k * N + n, mk16);
        a0 = _mm512_fmadd_ps(_mm512_set1_ps(ar0[k]), wv, a0);
        a1 = _mm512_fmadd_ps(_mm512_set1_ps(ar1[k]), wv, a1);
        a2 = _mm512_fmadd_ps(_mm512_set1_ps(ar2[k]), wv, a2);
        a3 = _mm512_fmadd_ps(_mm512_set1_ps(ar3[k]), wv, a3);
      }
      _mm512_mask_storeu_ps(pr0 + n, mk16, a0);
      _mm512_mask_storeu_ps(pr0 + N + n, mk16, a1);
      _mm512_mask_storeu_ps(pr0 + 2 * N + n, mk16, a2);
      _mm512_mask_storeu_ps(pr0 + 3 * N + n, mk16, a3);
    }
    for (int r = 0; r < 4; ++r) {
      epilogue_row(pr0 + r * N, bias,
                   res != nullptr ? res + (m + r) * ldr : nullptr, epi, N);
    }
  }
  for (; m < m1; ++m) {
    const float* arow = a + m * K;
    float* prow = o + m * N;
    for (size_t n = 0; n < N; n += 16) {
      const size_t wdt = std::min<size_t>(16, N - n);
      const __mmask16 mk16 =
          static_cast<__mmask16>(wdt == 16 ? 0xFFFFU : (1U << wdt) - 1U);
      __m512 acc = _mm512_setzero_ps();
      for (size_t k = 0; k < K; ++k) {
        acc = _mm512_fmadd_ps(_mm512_set1_ps(arow[k]),
                              widen(w.w.data() + k * N + n, mk16), acc);
      }
      _mm512_mask_storeu_ps(prow + n, mk16, acc);
    }
    epilogue_row(prow, bias, res != nullptr ? res + m * ldr : nullptr, epi, N);
  }
#else
  for (; m < m1; ++m) {
    const float* arow = a + m * K;
    float* prow = o + m * N;
    std::fill(prow, prow + N, 0.0F);
    // Each output element accumulates in ascending-k order regardless of
    // this loop nesting, so results are partition-independent.
    for (size_t k = 0; k < K; ++k) {
      const float av = arow[k];
      const uint16_t* wrow = w.w.data() + k * N;
      for (size_t n = 0; n < N; ++n) {
        prow[n] += av * f32_from_bf16(wrow[n]);
      }
    }
    epilogue_row(prow, bias, res != nullptr ? res + m * ldr : nullptr, epi, N);
  }
#endif
}

}  // namespace metadse::tensor::quant
