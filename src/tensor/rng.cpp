#include "tensor/rng.hpp"

#include <sstream>
#include <stdexcept>

namespace metadse::tensor {

float Rng::normal(float mean, float stddev) {
  ++draws_;
  if (null_) return mean;
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

float Rng::uniform(float lo, float hi) {
  ++draws_;
  if (null_) return lo;
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

size_t Rng::uniform_index(size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  ++draws_;
  if (null_) return 0;
  std::uniform_int_distribution<size_t> d(0, n - 1);
  return d(engine_);
}

Rng Rng::fork() {
  ++draws_;
  if (null_) return null_stream();
  return Rng(engine_());
}

std::string Rng::save_state() const {
  std::ostringstream os;
  os << draws_ << ' ' << engine_;
  return os.str();
}

void Rng::restore_state(const std::string& state) {
  std::istringstream is(state);
  uint64_t draws = 0;
  std::mt19937_64 engine;
  if (!(is >> draws >> engine)) {
    throw std::runtime_error("Rng::restore_state: malformed state string");
  }
  draws_ = draws;
  engine_ = engine;
}

}  // namespace metadse::tensor
