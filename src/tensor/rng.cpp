#include "tensor/rng.hpp"

#include <stdexcept>

namespace metadse::tensor {

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

float Rng::uniform(float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

size_t Rng::uniform_index(size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be > 0");
  std::uniform_int_distribution<size_t> d(0, n - 1);
  return d(engine_);
}

Rng Rng::fork() { return Rng(engine_()); }

}  // namespace metadse::tensor
