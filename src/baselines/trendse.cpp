#include "baselines/trendse.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "eval/metrics.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace metadse::baselines {

namespace {

std::vector<float> labels_of(const data::Dataset& ds,
                             data::TargetMetric target) {
  std::vector<float> out;
  out.reserve(ds.size());
  for (const auto& s : ds.samples) {
    out.push_back(data::target_of(s, target).front());
  }
  return out;
}

}  // namespace

TransferSet build_transfer_set(const std::vector<data::Dataset>& sources,
                               const data::Dataset& target_support,
                               data::TargetMetric target,
                               const TrEnDseOptions& options) {
  if (sources.empty()) {
    throw std::invalid_argument("build_transfer_set: no source datasets");
  }
  if (target_support.empty()) {
    throw std::invalid_argument("build_transfer_set: empty target support");
  }
  if (target == data::TargetMetric::kBoth) {
    throw std::invalid_argument(
        "build_transfer_set: similarity needs a single metric column");
  }
  const auto target_labels = labels_of(target_support, target);

  TransferSet ts;
  for (const auto& src : sources) {
    const auto src_labels = labels_of(src, target);
    ts.similarities.push_back(
        {src.workload, eval::wasserstein1(src_labels, target_labels)});
  }
  std::sort(ts.similarities.begin(), ts.similarities.end(),
            [](const SourceSimilarity& a, const SourceSimilarity& b) {
              return a.wasserstein < b.wasserstein;
            });

  // Target support label statistics, for source label-space alignment (the
  // "mapping to the target label space" all similarity-based frameworks do).
  double t_mean = 0.0;
  double t_sd = 0.0;
  for (float v : target_labels) t_mean += v;
  t_mean /= static_cast<double>(target_labels.size());
  for (float v : target_labels) t_sd += (v - t_mean) * (v - t_mean);
  t_sd = std::sqrt(t_sd / static_cast<double>(target_labels.size()));
  if (t_sd < 1e-6) t_sd = 1.0;

  tensor::Rng rng(options.seed);
  const size_t k = std::min(options.top_k_sources, ts.similarities.size());
  for (size_t i = 0; i < k; ++i) {
    const auto& name = ts.similarities[i].workload;
    const auto it =
        std::find_if(sources.begin(), sources.end(),
                     [&](const data::Dataset& d) { return d.workload == name; });
    // Source label statistics (affine alignment to the target support).
    const auto src_labels = labels_of(*it, target);
    double s_mean = 0.0;
    double s_sd = 0.0;
    for (float v : src_labels) s_mean += v;
    s_mean /= static_cast<double>(src_labels.size());
    for (float v : src_labels) s_sd += (v - s_mean) * (v - s_mean);
    s_sd = std::sqrt(s_sd / static_cast<double>(src_labels.size()));
    if (s_sd < 1e-6) s_sd = 1.0;

    const size_t take = std::min(options.samples_per_source, it->size());
    // Random subset without replacement.
    std::vector<size_t> idx(it->size());
    for (size_t j = 0; j < idx.size(); ++j) idx[j] = j;
    rng.shuffle(idx);
    for (size_t j = 0; j < take; ++j) {
      const auto& s = it->samples[idx[j]];
      ts.x.push_back(s.features);
      const double raw = data::target_of(s, target).front();
      ts.y.push_back(static_cast<float>(
          t_mean + (raw - s_mean) / s_sd * t_sd));
    }
  }
  // Replicate target support rows so the scarce target data carries weight.
  for (size_t r = 0; r < std::max<size_t>(1, options.target_replication); ++r) {
    for (const auto& s : target_support.samples) {
      ts.x.push_back(s.features);
      ts.y.push_back(data::target_of(s, target).front());
    }
  }
  return ts;
}

TrEnDse::TrEnDse(TrEnDseOptions options)
    : options_(options), model_(options.model) {}

void TrEnDse::fit(const std::vector<data::Dataset>& sources,
                  const data::Dataset& target_support,
                  data::TargetMetric target) {
  auto ts = build_transfer_set(sources, target_support, target, options_);
  similarities_ = std::move(ts.similarities);
  model_ = Gbrt(options_.model);
  model_.fit(ts.x, ts.y);
  fitted_ = true;
}

float TrEnDse::predict(const std::vector<float>& features) const {
  if (!fitted_) throw std::logic_error("TrEnDse: not fitted");
  return model_.predict(features);
}

std::vector<float> TrEnDse::predict_batch(const FeatureMatrix& x) const {
  std::vector<float> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

TrEnDseTransformer::TrEnDseTransformer(TrEnDseTransformerOptions options)
    : options_(std::move(options)) {}

void TrEnDseTransformer::fit(const std::vector<data::Dataset>& sources,
                             const data::Dataset& target_support,
                             data::TargetMetric target) {
  auto ts = build_transfer_set(sources, target_support, target,
                               options_.selection);
  similarities_ = std::move(ts.similarities);

  // Standardize labels on the transfer set (no test-set leakage).
  std::vector<std::vector<float>> rows;
  rows.reserve(ts.y.size());
  for (float v : ts.y) rows.push_back({v});
  label_scaler_ = data::Scaler();
  label_scaler_.fit(rows);

  tensor::Rng rng(options_.seed);
  nn::TransformerConfig cfg = options_.predictor;
  cfg.n_outputs = 1;
  model_ = std::make_unique<nn::TransformerRegressor>(cfg, rng);

  const size_t n = ts.x.size();
  const size_t n_feat = ts.x.front().size();
  if (n_feat != cfg.n_tokens) {
    throw std::invalid_argument(
        "TrEnDseTransformer: feature width != predictor n_tokens");
  }
  nn::Adam opt(model_->parameters(), options_.lr);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(order);
    for (size_t start = 0; start < n; start += options_.batch) {
      const size_t stop = std::min(n, start + options_.batch);
      const size_t bs = stop - start;
      std::vector<float> bx;
      std::vector<float> by;
      bx.reserve(bs * n_feat);
      by.reserve(bs);
      for (size_t i = start; i < stop; ++i) {
        const auto& row = ts.x[order[i]];
        bx.insert(bx.end(), row.begin(), row.end());
        by.push_back(label_scaler_.transform({ts.y[order[i]]}).front());
      }
      auto x = tensor::Tensor::from_vector({bs, n_feat}, std::move(bx));
      auto y = tensor::Tensor::from_vector({bs, 1}, std::move(by));
      opt.zero_grad();
      auto loss = tensor::mse_loss(model_->forward(x, rng, /*train=*/true), y);
      loss.backward();
      opt.step();
    }
  }
}

float TrEnDseTransformer::predict(const std::vector<float>& features) const {
  if (!model_) throw std::logic_error("TrEnDseTransformer: not fitted");
  const auto scaled = model_->predict_one(features);
  return label_scaler_.inverse({scaled.front()}).front();
}

std::vector<float> TrEnDseTransformer::predict_batch(
    const FeatureMatrix& x) const {
  if (!model_) throw std::logic_error("TrEnDseTransformer: not fitted");
  // One batched no-grad forward; rows are bitwise identical to the
  // per-point predict() loop.
  const auto scaled = model_->predict_batch(x);
  std::vector<float> out;
  out.reserve(x.size());
  for (const auto& y : scaled) {
    out.push_back(label_scaler_.inverse({y.front()}).front());
  }
  return out;
}

}  // namespace metadse::baselines
