#include "baselines/signature.hpp"

#include <cmath>
#include <stdexcept>

#include "baselines/linear_fit.hpp"

namespace metadse::baselines {

std::vector<double> signature_of(const sim::WorkloadCharacteristics& w) {
  // Capacities are log-scaled so "10x the working set" is one unit, not a
  // thousand; unit-interval knobs pass through.
  auto lg = [](double v) { return std::log2(std::max(1.0, v)); };
  return {
      w.f_int_alu,         w.f_int_mul,        w.f_fp_alu,
      w.f_fp_mul,          w.f_load,           w.f_store,
      w.f_branch,          w.branch_entropy,   w.indirect_frac,
      lg(w.call_depth) / 6.0,  lg(w.btb_footprint) / 13.0,
      lg(w.dcache_ws_kb) / 9.0, lg(w.dcache_ws2_kb) / 13.0,
      w.streaming,         lg(w.icache_ws_kb) / 7.0,
      w.ilp / 8.0,         w.mlp / 10.0,       w.dep_chain,
  };
}

double signature_distance(const std::vector<double>& a,
                          const std::vector<double>& b) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument("signature_distance: length mismatch");
  }
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s);
}

SignatureTransfer::SignatureTransfer(SignatureTransferOptions options)
    : options_(options) {}

void SignatureTransfer::fit_sources(
    const std::vector<data::Dataset>& sources,
    const std::vector<std::vector<double>>& signatures,
    data::TargetMetric target) {
  if (sources.empty() || sources.size() != signatures.size()) {
    throw std::invalid_argument(
        "SignatureTransfer: sources/signatures size mismatch");
  }
  if (target == data::TargetMetric::kBoth) {
    throw std::invalid_argument("SignatureTransfer: single-metric only");
  }
  models_.clear();
  names_.clear();
  signatures_ = signatures;
  for (const auto& src : sources) {
    FeatureMatrix x;
    std::vector<float> y;
    for (const auto& s : src.samples) {
      x.push_back(s.features);
      y.push_back(data::target_of(s, target).front());
    }
    Gbrt model(options_.source_model);
    model.fit(x, y);
    models_.push_back(std::move(model));
    names_.push_back(src.workload);
  }
  adapted_ = false;
}

void SignatureTransfer::adapt(const data::Dataset& target_support,
                              const std::vector<double>& target_signature,
                              data::TargetMetric target) {
  if (models_.empty()) {
    throw std::logic_error("SignatureTransfer: fit_sources first");
  }
  if (target_support.empty()) {
    throw std::invalid_argument("SignatureTransfer: empty support");
  }
  selected_ = 0;
  double best = signature_distance(signatures_[0], target_signature);
  for (size_t i = 1; i < signatures_.size(); ++i) {
    const double d = signature_distance(signatures_[i], target_signature);
    if (d < best) {
      best = d;
      selected_ = i;
    }
  }
  // Affine calibration on the support: y_target ~ a * f_src(x) + b.
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (const auto& s : target_support.samples) {
    a.push_back({models_[selected_].predict(s.features), 1.0});
    b.push_back(data::target_of(s, target).front());
  }
  const auto w = least_squares(a, b, options_.ridge);
  scale_ = w[0];
  offset_ = w[1];
  adapted_ = true;
}

float SignatureTransfer::predict(const std::vector<float>& features) const {
  if (!adapted_) throw std::logic_error("SignatureTransfer: adapt first");
  return static_cast<float>(scale_ * models_[selected_].predict(features) +
                            offset_);
}

std::vector<float> SignatureTransfer::predict_batch(
    const FeatureMatrix& x) const {
  std::vector<float> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

const std::string& SignatureTransfer::selected_source() const {
  if (!adapted_) throw std::logic_error("SignatureTransfer: adapt first");
  return names_[selected_];
}

}  // namespace metadse::baselines
