#include "baselines/linear_fit.hpp"

#include <cmath>
#include <stdexcept>

namespace metadse::baselines {

std::vector<double> least_squares(const std::vector<std::vector<double>>& a,
                                  const std::vector<double>& b,
                                  double lambda) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument("least_squares: bad system size");
  }
  const size_t n = a.size();
  const size_t k = a.front().size();
  if (k == 0) throw std::invalid_argument("least_squares: empty rows");
  for (const auto& row : a) {
    if (row.size() != k) throw std::invalid_argument("least_squares: ragged A");
  }
  // Normal equations: (A^T A + lambda I) w = A^T b.
  std::vector<std::vector<double>> m(k, std::vector<double>(k + 1, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      double s = 0.0;
      for (size_t r = 0; r < n; ++r) s += a[r][i] * a[r][j];
      m[i][j] = s + (i == j ? lambda : 0.0);
    }
    double s = 0.0;
    for (size_t r = 0; r < n; ++r) s += a[r][i] * b[r];
    m[i][k] = s;
  }
  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < k; ++col) {
    size_t piv = col;
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(m[r][col]) > std::fabs(m[piv][col])) piv = r;
    }
    if (std::fabs(m[piv][col]) < 1e-14) {
      throw std::runtime_error("least_squares: singular system");
    }
    std::swap(m[piv], m[col]);
    for (size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double f = m[r][col] / m[col][col];
      for (size_t c = col; c <= k; ++c) m[r][c] -= f * m[col][c];
    }
  }
  std::vector<double> w(k);
  for (size_t i = 0; i < k; ++i) w[i] = m[i][k] / m[i][i];
  return w;
}

LinearFit::LinearFit(LinearFitOptions options) : options_(options) {}

void LinearFit::fit_sources(const std::vector<data::Dataset>& sources,
                            data::TargetMetric target) {
  if (sources.empty()) {
    throw std::invalid_argument("LinearFit: no source datasets");
  }
  if (target == data::TargetMetric::kBoth) {
    throw std::invalid_argument("LinearFit: single-metric models only");
  }
  source_models_.clear();
  source_names_.clear();
  for (const auto& src : sources) {
    FeatureMatrix x;
    std::vector<float> y;
    x.reserve(src.size());
    y.reserve(src.size());
    for (const auto& s : src.samples) {
      x.push_back(s.features);
      y.push_back(data::target_of(s, target).front());
    }
    Gbrt model(options_.source_model);
    model.fit(x, y);
    source_models_.push_back(std::move(model));
    source_names_.push_back(src.workload);
  }
}

void LinearFit::adapt(const data::Dataset& target_support,
                      data::TargetMetric target) {
  if (source_models_.empty()) {
    throw std::logic_error("LinearFit: fit_sources first");
  }
  if (target_support.empty()) {
    throw std::invalid_argument("LinearFit: empty target support");
  }
  const size_t k = source_models_.size();
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (const auto& s : target_support.samples) {
    std::vector<double> row(k + 1, 1.0);  // intercept in the last column
    for (size_t m = 0; m < k; ++m) {
      row[m] = source_models_[m].predict(s.features);
    }
    a.push_back(std::move(row));
    b.push_back(data::target_of(s, target).front());
  }
  coef_ = least_squares(a, b, options_.ridge);
}

float LinearFit::predict(const std::vector<float>& features) const {
  if (coef_.empty()) throw std::logic_error("LinearFit: adapt first");
  double y = coef_.back();  // intercept
  for (size_t m = 0; m < source_models_.size(); ++m) {
    y += coef_[m] * source_models_[m].predict(features);
  }
  return static_cast<float>(y);
}

std::vector<float> LinearFit::predict_batch(const FeatureMatrix& x) const {
  std::vector<float> out;
  out.reserve(x.size());
  for (const auto& row : x) out.push_back(predict(row));
  return out;
}

}  // namespace metadse::baselines
