// Common interface for the classical surrogate models MetaDSE is compared
// against (RF, GBRT, TrEnDSE, linear fitting).
#pragma once

#include <cstddef>
#include <vector>

namespace metadse::baselines {

/// Feature matrix: one row per sample.
using FeatureMatrix = std::vector<std::vector<float>>;

/// Abstract single-output regressor.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on @p x (n rows) and @p y (n labels). Throws
  /// std::invalid_argument on empty or ragged input.
  virtual void fit(const FeatureMatrix& x, const std::vector<float>& y) = 0;

  /// Predicts one sample; only valid after fit().
  virtual float predict(const std::vector<float>& x) const = 0;

  /// Predicts a batch (default: loops over predict).
  std::vector<float> predict_batch(const FeatureMatrix& x) const {
    std::vector<float> out;
    out.reserve(x.size());
    for (const auto& row : x) out.push_back(predict(row));
    return out;
  }
};

/// Validates a training set; returns the feature width.
size_t check_training_set(const FeatureMatrix& x, const std::vector<float>& y);

}  // namespace metadse::baselines
