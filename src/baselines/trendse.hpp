// TrEnDSE (Wang et al., ICCAD'23) re-implementation: the state-of-the-art
// cross-workload DSE baseline the paper compares against. Workload
// similarity is measured with the 1-D Wasserstein distance between metric
// distributions; samples from the most similar source workloads are
// transferred into the target training set; the predictor is a
// gradient-boosted ensemble. TrEnDseTransformer swaps the ensemble for the
// same transformer predictor MetaDSE uses (the paper's second baseline).
#pragma once

#include <memory>
#include <string>

#include "baselines/ensembles.hpp"
#include "data/dataset.hpp"
#include "nn/transformer.hpp"

namespace metadse::baselines {

/// Source-workload similarity score (smaller distance = more similar).
struct SourceSimilarity {
  std::string workload;
  double wasserstein = 0.0;
};

/// Options shared by the TrEnDSE variants.
struct TrEnDseOptions {
  size_t top_k_sources = 3;         ///< most-similar source workloads used
  size_t samples_per_source = 150;  ///< transferred samples per source
  size_t target_replication = 8;    ///< oversampling of target support rows
  GbrtOptions model{};              ///< ensemble predictor settings
  uint64_t seed = 31;
};

/// TrEnDSE with the original ensemble predictor.
class TrEnDse {
 public:
  explicit TrEnDse(TrEnDseOptions options = {});

  /// Fits from @p sources plus a labelled target support set.
  /// @p target selects which metric column drives similarity + training.
  void fit(const std::vector<data::Dataset>& sources,
           const data::Dataset& target_support, data::TargetMetric target);

  float predict(const std::vector<float>& features) const;
  std::vector<float> predict_batch(const FeatureMatrix& x) const;

  /// Similarities computed during the last fit, most similar first.
  const std::vector<SourceSimilarity>& similarities() const {
    return similarities_;
  }

 private:
  TrEnDseOptions options_;
  Gbrt model_;
  std::vector<SourceSimilarity> similarities_;
  bool fitted_ = false;
};

/// Training schedule for the transformer variant.
struct TrEnDseTransformerOptions {
  TrEnDseOptions selection{};        ///< same data-transfer policy
  nn::TransformerConfig predictor{}; ///< transformer architecture
  size_t epochs = 60;
  size_t batch = 32;
  float lr = 1e-3F;
  uint64_t seed = 33;
};

/// TrEnDSE with the ensemble replaced by a transformer predictor.
class TrEnDseTransformer {
 public:
  explicit TrEnDseTransformer(TrEnDseTransformerOptions options);

  void fit(const std::vector<data::Dataset>& sources,
           const data::Dataset& target_support, data::TargetMetric target);

  float predict(const std::vector<float>& features) const;
  std::vector<float> predict_batch(const FeatureMatrix& x) const;

  const std::vector<SourceSimilarity>& similarities() const {
    return similarities_;
  }

 private:
  TrEnDseTransformerOptions options_;
  std::unique_ptr<nn::TransformerRegressor> model_;
  data::Scaler label_scaler_;
  std::vector<SourceSimilarity> similarities_;
};

/// Shared selection logic: ranks sources by Wasserstein distance between
/// their label distribution and the target support labels, then assembles
/// the transfer training set (selected source samples + replicated target
/// support rows).
struct TransferSet {
  FeatureMatrix x;
  std::vector<float> y;
  std::vector<SourceSimilarity> similarities;
};
TransferSet build_transfer_set(const std::vector<data::Dataset>& sources,
                               const data::Dataset& target_support,
                               data::TargetMetric target,
                               const TrEnDseOptions& options);

}  // namespace metadse::baselines
