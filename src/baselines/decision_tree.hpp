// CART regression tree (variance-reduction splits) — the building block of
// the Random Forest and GBRT baselines.
#pragma once

#include <cstdint>

#include "baselines/regressor.hpp"
#include "tensor/rng.hpp"

namespace metadse::baselines {

/// Tree growth controls.
struct TreeOptions {
  size_t max_depth = 8;
  size_t min_samples_leaf = 2;
  size_t min_samples_split = 4;
  /// Features considered per split; 0 means all features.
  size_t feature_subsample = 0;
  /// Seed for feature subsampling (only used when feature_subsample > 0).
  uint64_t seed = 1;
};

/// Binary regression tree; nodes are stored in a flat array.
class DecisionTree : public Regressor {
 public:
  explicit DecisionTree(TreeOptions options = {});

  void fit(const FeatureMatrix& x, const std::vector<float>& y) override;
  float predict(const std::vector<float>& x) const override;

  /// Node count after fit (diagnostics / tests).
  size_t node_count() const { return nodes_.size(); }
  size_t depth() const { return depth_; }

 private:
  struct Node {
    int feature = -1;       ///< -1 marks a leaf
    float threshold = 0.0F; ///< go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    float value = 0.0F;     ///< leaf prediction
  };

  size_t build(const FeatureMatrix& x, const std::vector<float>& y,
               std::vector<size_t>& idx, size_t begin, size_t end,
               size_t depth, tensor::Rng& rng);

  TreeOptions options_;
  std::vector<Node> nodes_;
  size_t n_features_ = 0;
  size_t depth_ = 0;
};

}  // namespace metadse::baselines
