// Tree ensembles: bagged Random Forest and Gradient-Boosted Regression
// Trees — the RF/GBRT baselines of Tables II and III.
#pragma once

#include <memory>

#include "baselines/decision_tree.hpp"

namespace metadse::baselines {

/// Random forest options.
struct ForestOptions {
  size_t n_trees = 60;
  TreeOptions tree{.max_depth = 12,
                   .min_samples_leaf = 2,
                   .min_samples_split = 4,
                   .feature_subsample = 8};
  uint64_t seed = 7;
};

/// Bagged random forest regressor (bootstrap rows + per-split feature
/// subsampling; prediction is the tree mean).
class RandomForest : public Regressor {
 public:
  explicit RandomForest(ForestOptions options = {});

  void fit(const FeatureMatrix& x, const std::vector<float>& y) override;
  float predict(const std::vector<float>& x) const override;

  size_t tree_count() const { return trees_.size(); }

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

/// GBRT options.
struct GbrtOptions {
  size_t n_rounds = 120;
  float learning_rate = 0.08F;
  /// Row subsampling per round (stochastic gradient boosting).
  float subsample = 0.9F;
  TreeOptions tree{.max_depth = 3,
                   .min_samples_leaf = 2,
                   .min_samples_split = 4,
                   .feature_subsample = 0};
  uint64_t seed = 11;
};

/// Gradient-boosted regression trees with squared-error loss.
class Gbrt : public Regressor {
 public:
  explicit Gbrt(GbrtOptions options = {});

  void fit(const FeatureMatrix& x, const std::vector<float>& y) override;
  float predict(const std::vector<float>& x) const override;

  size_t round_count() const { return trees_.size(); }

 private:
  GbrtOptions options_;
  float base_ = 0.0F;
  std::vector<DecisionTree> trees_;
};

}  // namespace metadse::baselines
