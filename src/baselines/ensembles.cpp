#include "baselines/ensembles.hpp"

#include <memory>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"

namespace metadse::baselines {

RandomForest::RandomForest(ForestOptions options) : options_(options) {
  if (options_.n_trees == 0) {
    throw std::invalid_argument("RandomForest: n_trees must be > 0");
  }
}

void RandomForest::fit(const FeatureMatrix& x, const std::vector<float>& y) {
  check_training_set(x, y);
  trees_.clear();
  trees_.reserve(options_.n_trees);
  tensor::Rng rng(options_.seed);
  const size_t n = x.size();
  // Draw every tree's bootstrap indices and seed from the shared stream
  // first (same RNG call order as fitting the trees one by one), then fit
  // the trees on the pool — each tree's inputs are fixed before any worker
  // starts, so the forest is identical for every thread count.
  std::vector<std::vector<size_t>> bootstrap(options_.n_trees);
  std::vector<uint64_t> seeds(options_.n_trees);
  for (size_t t = 0; t < options_.n_trees; ++t) {
    bootstrap[t].reserve(n);
    for (size_t i = 0; i < n; ++i) bootstrap[t].push_back(rng.uniform_index(n));
    seeds[t] = rng.engine()();
  }
  core::parallel_map_reduce<std::unique_ptr<DecisionTree>>(
      options_.n_trees,
      [&](size_t t) {
        FeatureMatrix bx;
        std::vector<float> by;
        bx.reserve(n);
        by.reserve(n);
        for (size_t j : bootstrap[t]) {
          bx.push_back(x[j]);
          by.push_back(y[j]);
        }
        TreeOptions to = options_.tree;
        to.seed = seeds[t];
        auto tree = std::make_unique<DecisionTree>(to);
        tree->fit(bx, by);
        return tree;
      },
      [&](size_t, std::unique_ptr<DecisionTree> tree) {
        trees_.push_back(std::move(*tree));
      });
}

float RandomForest::predict(const std::vector<float>& x) const {
  if (trees_.empty()) throw std::logic_error("RandomForest: not fitted");
  double s = 0.0;
  for (const auto& t : trees_) s += t.predict(x);
  return static_cast<float>(s / static_cast<double>(trees_.size()));
}

Gbrt::Gbrt(GbrtOptions options) : options_(options) {
  if (options_.n_rounds == 0 || options_.learning_rate <= 0.0F ||
      options_.subsample <= 0.0F || options_.subsample > 1.0F) {
    throw std::invalid_argument("Gbrt: invalid options");
  }
}

void Gbrt::fit(const FeatureMatrix& x, const std::vector<float>& y) {
  check_training_set(x, y);
  trees_.clear();
  trees_.reserve(options_.n_rounds);
  tensor::Rng rng(options_.seed);
  const size_t n = x.size();
  double mean = 0.0;
  for (float v : y) mean += v;
  base_ = static_cast<float>(mean / static_cast<double>(n));
  std::vector<float> residual(n);
  std::vector<float> current(n, base_);
  for (size_t r = 0; r < options_.n_rounds; ++r) {
    for (size_t i = 0; i < n; ++i) residual[i] = y[i] - current[i];
    // Row subsampling.
    FeatureMatrix sx;
    std::vector<float> sy;
    if (options_.subsample < 1.0F) {
      for (size_t i = 0; i < n; ++i) {
        if (rng.uniform() < options_.subsample) {
          sx.push_back(x[i]);
          sy.push_back(residual[i]);
        }
      }
      if (sx.size() < 2) {
        sx = x;
        sy = residual;
      }
    } else {
      sx = x;
      sy = residual;
    }
    TreeOptions to = options_.tree;
    to.seed = rng.engine()();
    DecisionTree tree(to);
    tree.fit(sx, sy);
    // Boosting rounds are inherently sequential, but refreshing the running
    // predictions is not: each row is independent and writes its own slot.
    core::parallel_for_blocks(n, 64, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        current[i] += options_.learning_rate * tree.predict(x[i]);
      }
    });
    trees_.push_back(std::move(tree));
  }
}

float Gbrt::predict(const std::vector<float>& x) const {
  if (trees_.empty()) throw std::logic_error("Gbrt: not fitted");
  double s = base_;
  for (const auto& t : trees_) {
    s += options_.learning_rate * t.predict(x);
  }
  return static_cast<float>(s);
}

}  // namespace metadse::baselines
