// Workload-signature transfer (Khan et al. PACT'07 / Guo et al. — the third
// strategy in the paper's related-work taxonomy): each source workload is
// represented by a behaviour signature during pre-training; a new workload
// is served by the model of the most similar signature, with a light affine
// calibration fitted on the few labelled target samples.
#pragma once

#include <string>

#include "baselines/ensembles.hpp"
#include "data/dataset.hpp"
#include "sim/workload_characteristics.hpp"

namespace metadse::baselines {

/// Normalized behaviour-signature vector of a workload (instruction mix,
/// control behaviour, locality, parallelism — the knobs of the substrate's
/// WorkloadCharacteristics).
std::vector<double> signature_of(const sim::WorkloadCharacteristics& w);

/// Euclidean distance between two signatures (must be equal length).
double signature_distance(const std::vector<double>& a,
                          const std::vector<double>& b);

/// Options for the signature-transfer baseline.
struct SignatureTransferOptions {
  GbrtOptions source_model{};
  double ridge = 1e-6;  ///< damping of the affine calibration fit
};

/// Signature-based cross-workload predictor.
class SignatureTransfer {
 public:
  explicit SignatureTransfer(SignatureTransferOptions options = {});

  /// Trains one model per source dataset and records its signature.
  /// @p signatures must parallel @p sources.
  void fit_sources(const std::vector<data::Dataset>& sources,
                   const std::vector<std::vector<double>>& signatures,
                   data::TargetMetric target);

  /// Picks the source whose signature is nearest to @p target_signature and
  /// fits the affine output calibration y = a * f_src(x) + b on the support.
  void adapt(const data::Dataset& target_support,
             const std::vector<double>& target_signature,
             data::TargetMetric target);

  float predict(const std::vector<float>& features) const;
  std::vector<float> predict_batch(const FeatureMatrix& x) const;

  /// Name of the source selected by the last adapt().
  const std::string& selected_source() const;

 private:
  SignatureTransferOptions options_;
  std::vector<Gbrt> models_;
  std::vector<std::vector<double>> signatures_;
  std::vector<std::string> names_;
  size_t selected_ = 0;
  double scale_ = 1.0;
  double offset_ = 0.0;
  bool adapted_ = false;
};

}  // namespace metadse::baselines
