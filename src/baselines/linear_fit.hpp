// The "linear fitting" transfer strategy (Dubach et al., IEEE TC'10): one
// fixed predictor per source workload is trained offline; a target workload
// is served by a linear map from the source models' predictions to the
// target label space, fitted on the few labelled target samples.
#pragma once

#include <memory>
#include <string>

#include "baselines/ensembles.hpp"
#include "data/dataset.hpp"

namespace metadse::baselines {

/// Solves min ||A w - b||_2 for small dense systems via the normal equations
/// with ridge damping @p lambda (guards rank deficiency with few samples).
std::vector<double> least_squares(const std::vector<std::vector<double>>& a,
                                  const std::vector<double>& b,
                                  double lambda = 1e-6);

/// Options for the linear-fitting baseline.
struct LinearFitOptions {
  GbrtOptions source_model{};  ///< per-source predictor
  double ridge = 1e-4;         ///< damping for the target-space map
};

/// Cross-workload predictor by linear recombination of source models.
class LinearFit {
 public:
  explicit LinearFit(LinearFitOptions options = {});

  /// Trains one model per source dataset (offline phase).
  void fit_sources(const std::vector<data::Dataset>& sources,
                   data::TargetMetric target);

  /// Fits the linear map on the target support set (online phase).
  /// fit_sources must have been called.
  void adapt(const data::Dataset& target_support, data::TargetMetric target);

  float predict(const std::vector<float>& features) const;
  std::vector<float> predict_batch(const FeatureMatrix& x) const;

  /// Linear coefficients (one per source model, plus intercept last).
  const std::vector<double>& coefficients() const { return coef_; }

 private:
  LinearFitOptions options_;
  std::vector<Gbrt> source_models_;
  std::vector<std::string> source_names_;
  std::vector<double> coef_;
};

}  // namespace metadse::baselines
