#include "baselines/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace metadse::baselines {

size_t check_training_set(const FeatureMatrix& x, const std::vector<float>& y) {
  if (x.empty() || x.size() != y.size()) {
    throw std::invalid_argument(
        "fit: empty training set or feature/label count mismatch");
  }
  const size_t w = x.front().size();
  if (w == 0) throw std::invalid_argument("fit: zero-width features");
  for (const auto& row : x) {
    if (row.size() != w) throw std::invalid_argument("fit: ragged features");
  }
  return w;
}

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {
  if (options_.min_samples_leaf == 0 || options_.max_depth == 0) {
    throw std::invalid_argument("DecisionTree: zero-sized growth limits");
  }
}

void DecisionTree::fit(const FeatureMatrix& x, const std::vector<float>& y) {
  n_features_ = check_training_set(x, y);
  nodes_.clear();
  depth_ = 0;
  std::vector<size_t> idx(x.size());
  std::iota(idx.begin(), idx.end(), 0);
  tensor::Rng rng(options_.seed);
  build(x, y, idx, 0, idx.size(), 0, rng);
}

size_t DecisionTree::build(const FeatureMatrix& x, const std::vector<float>& y,
                           std::vector<size_t>& idx, size_t begin, size_t end,
                           size_t depth, tensor::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const size_t n = end - begin;
  double sum = 0.0;
  double sum2 = 0.0;
  for (size_t i = begin; i < end; ++i) {
    sum += y[idx[i]];
    sum2 += static_cast<double>(y[idx[i]]) * y[idx[i]];
  }
  const float mean = static_cast<float>(sum / static_cast<double>(n));
  const double var = sum2 - sum * sum / static_cast<double>(n);

  const size_t me = nodes_.size();
  nodes_.push_back(Node{});
  nodes_[me].value = mean;
  if (depth >= options_.max_depth || n < options_.min_samples_split ||
      var < 1e-12) {
    return me;
  }

  // Candidate features (optionally a random subset, as in random forests).
  std::vector<size_t> feats(n_features_);
  std::iota(feats.begin(), feats.end(), 0);
  if (options_.feature_subsample > 0 &&
      options_.feature_subsample < n_features_) {
    rng.shuffle(feats);
    feats.resize(options_.feature_subsample);
  }

  // Best split: maximize variance reduction = sum2 - (L^2/nl + R^2/nr) drop.
  double best_score = -std::numeric_limits<double>::infinity();
  int best_feat = -1;
  float best_thr = 0.0F;
  std::vector<size_t> order(idx.begin() + begin, idx.begin() + end);
  for (size_t f : feats) {
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return x[a][f] < x[b][f];
    });
    double left_sum = 0.0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_sum += y[order[i]];
      const size_t nl = i + 1;
      const size_t nr = n - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
        continue;
      }
      if (x[order[i]][f] == x[order[i + 1]][f]) continue;  // no valid cut
      const double right_sum = sum - left_sum;
      const double score =
          left_sum * left_sum / static_cast<double>(nl) +
          right_sum * right_sum / static_cast<double>(nr);
      if (score > best_score) {
        best_score = score;
        best_feat = static_cast<int>(f);
        best_thr = 0.5F * (x[order[i]][f] + x[order[i + 1]][f]);
      }
    }
  }
  if (best_feat < 0) return me;  // no split improves

  // Partition idx[begin, end) by the chosen split.
  const auto mid_it = std::partition(
      idx.begin() + begin, idx.begin() + end,
      [&](size_t i) { return x[i][best_feat] <= best_thr; });
  const size_t mid = static_cast<size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) return me;  // degenerate (ties)

  nodes_[me].feature = best_feat;
  nodes_[me].threshold = best_thr;
  const size_t l = build(x, y, idx, begin, mid, depth + 1, rng);
  nodes_[me].left = static_cast<int>(l);
  const size_t r = build(x, y, idx, mid, end, depth + 1, rng);
  nodes_[me].right = static_cast<int>(r);
  return me;
}

float DecisionTree::predict(const std::vector<float>& x) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree: not fitted");
  if (x.size() != n_features_) {
    throw std::invalid_argument("DecisionTree::predict: feature width " +
                                std::to_string(x.size()) + " != " +
                                std::to_string(n_features_));
  }
  size_t cur = 0;
  while (nodes_[cur].feature >= 0) {
    cur = x[nodes_[cur].feature] <= nodes_[cur].threshold
              ? static_cast<size_t>(nodes_[cur].left)
              : static_cast<size_t>(nodes_[cur].right);
  }
  return nodes_[cur].value;
}

}  // namespace metadse::baselines
