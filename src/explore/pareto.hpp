// Multi-objective DSE support: Pareto dominance over (IPC up, power down),
// a non-dominated archive, the 2-D hypervolume indicator, and ADRS (average
// distance to reference set) — the standard metrics CPU-DSE papers (incl.
// the AttentionDSE line this paper builds on) report.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "arch/design_space.hpp"

namespace metadse::explore {

/// One design point's objectives: IPC is maximized, power minimized.
struct Objective {
  double ipc = 0.0;
  double power = 0.0;
};

/// True iff @p a dominates @p b (no worse in both, strictly better in one).
bool dominates(const Objective& a, const Objective& b);

/// A Pareto-optimal archive of (configuration, objectives) pairs.
class ParetoArchive {
 public:
  struct Entry {
    arch::Config config;
    Objective objective;
  };

  /// Inserts a candidate; returns true when it is non-dominated (dominated
  /// incumbents are evicted). Duplicate objectives are kept once. Non-finite
  /// objectives (a diverged surrogate, a quarantined evaluation) are
  /// rejected outright so they can never poison dominance comparisons.
  bool insert(arch::Config config, Objective objective);

  /// Rebuilds an archive from previously-serialized entries, preserving
  /// insertion order exactly (order feeds the evolutionary explorer's parent
  /// draws, so a resumed run must see the same sequence). The entries are
  /// trusted to be mutually non-dominated — integrity is the snapshot
  /// checksum's job — but non-finite objectives are rejected here too.
  static ParetoArchive from_entries(std::vector<Entry> entries);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// 2-D hypervolume dominated by the archive with respect to a reference
  /// point (ref.ipc below every point, ref.power above every point).
  /// Points outside the reference box contribute their clipped area.
  double hypervolume(const Objective& ref) const;

  /// Objectives only (for ADRS computations).
  std::vector<Objective> objectives() const;

 private:
  std::vector<Entry> entries_;
};

/// Average Distance to Reference Set: mean over reference points of the
/// minimum normalized Euclidean distance to the approximation set. Lower is
/// better; 0 means the reference front is fully covered.
double adrs(const std::vector<Objective>& reference,
            const std::vector<Objective>& approximation);

}  // namespace metadse::explore
