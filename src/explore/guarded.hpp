// Fault containment for exploration evaluators. Real DSE oracles (gem5-class
// simulators, adapted surrogates) crash, hang, and occasionally emit garbage;
// GuardedEvaluator wraps them with per-call wall-clock deadlines, bounded
// retry with exponential backoff, NaN/Inf + sanity-band checks on every
// objective, and a consecutive-failure circuit breaker that walks a
// degradation ladder (surrogate -> baseline -> quarantine-and-skip) instead
// of taking the whole run down. Every event is accounted for in a RunReport.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <optional>

#include "explore/explorer.hpp"
#include "explore/run_report.hpp"

namespace metadse::explore {

/// A session's total wall-clock allowance, shared between the serving layer
/// and the evaluators running on its behalf. The budget is *charged*, not
/// polled: queue wait, evaluation attempts, and retry backoffs each consume
/// an explicit number of milliseconds, so the remaining allowance shrinks as
/// a session's requests retry — and tests can drain it deterministically
/// without real clocks. A watchdog (or shutdown path) can also cancel() it
/// outright; both exhaustion and cancellation make evaluators abort
/// cooperatively at their next check. Thread-safe: charge/cancel may come
/// from a different thread than the evaluator loop.
class DeadlineBudget {
 public:
  /// @p total_ms == 0 means unlimited (the budget can still be cancelled).
  explicit DeadlineBudget(size_t total_ms) : total_ms_(total_ms) {}

  /// Consumes @p ms of the allowance (saturating).
  void charge(size_t ms) {
    consumed_ms_.fetch_add(ms, std::memory_order_relaxed);
  }
  /// Milliseconds left; SIZE_MAX when unlimited, 0 when exhausted/cancelled.
  size_t remaining_ms() const {
    if (cancelled_.load(std::memory_order_relaxed)) return 0;
    if (total_ms_ == 0) return SIZE_MAX;
    const size_t used = consumed_ms_.load(std::memory_order_relaxed);
    return used >= total_ms_ ? 0 : total_ms_ - used;
  }
  bool exhausted() const { return remaining_ms() == 0; }

  /// Cooperative kill switch (watchdog breaker, shutdown): evaluators abort
  /// at the next budget check.
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  size_t total_ms() const { return total_ms_; }
  size_t consumed_ms() const {
    return consumed_ms_.load(std::memory_order_relaxed);
  }

 private:
  size_t total_ms_;
  std::atomic<size_t> consumed_ms_{0};
  std::atomic<bool> cancelled_{false};
};

/// Per-point evaluator that also sees the attempt index (0-based), so a
/// retry is a *different* draw for fault-injected substrates (mirrors
/// data::DatasetGenerator::evaluate's attempt parameter).
using AttemptEvaluator =
    std::function<Objective(const arch::Config&, size_t attempt)>;

/// What the breaker does once it opens.
enum class DegradePolicy {
  kLadder,    ///< surrogate -> baseline -> quarantine-and-skip
  kSkip,      ///< surrogate -> quarantine-and-skip (no baseline rung)
  kFailFast,  ///< throw ExplorationAborted (the journal preserves progress)
};

/// The breaker opened under DegradePolicy::kFailFast. The exploration
/// journal (if any) retains everything evaluated so far, so a fixed run can
/// resume instead of restarting.
class ExplorationAborted : public std::runtime_error {
 public:
  explicit ExplorationAborted(const std::string& what)
      : std::runtime_error(what) {}
};

/// Containment knobs. Defaults match the dataset generator's RetryPolicy and
/// physical label bounds.
struct GuardOptions {
  /// Wall-clock budget per evaluator call in milliseconds; 0 disables the
  /// check. Detection, not preemption: an in-process evaluator cannot be
  /// killed mid-call, so an overrun is observed after the call returns and
  /// its result is discarded as a timeout. Batch calls get deadline_ms per
  /// point. Keep 0 in determinism tests — real clocks are not reproducible.
  size_t deadline_ms = 0;
  size_t max_retries = 2;       ///< re-attempts after the first try (>= 0)
  size_t backoff_base_ms = 10;  ///< first-retry backoff (doubles per retry)
  size_t backoff_cap_ms = 1000; ///< exponential backoff ceiling
  /// Consecutive points that exhaust their retry budget before the breaker
  /// opens and the run downgrades one rung (>= 1).
  size_t breaker_threshold = 4;
  DegradePolicy policy = DegradePolicy::kLadder;
  /// Sanity band on objectives: finite values outside it are rejected like
  /// NaNs (an adapted predictor far out of its training band is garbage).
  /// Defaults mirror the dataset generator's plausible-label bounds.
  double ipc_min = 0.0;
  double ipc_max = 128.0;
  double power_min = 0.0;
  double power_max = 1e5;
  /// Rung the evaluator starts on. A load-shedding server forces kBaseline
  /// so an overloaded session pays the cheap forest instead of the
  /// transformer; kBaseline requires a baseline evaluator at construction.
  DegradeLevel start_level = DegradeLevel::kSurrogate;
  /// When a per-call deadline overrun is observed mid-batch, stop issuing
  /// primary attempts for the remainder of that batch (each remaining point
  /// falls straight down the ladder and is counted in RunReport::cancelled)
  /// instead of letting every point run to its own timeout. Never triggers
  /// with deadline_ms == 0.
  bool cancel_batch_on_deadline = true;
};

/// Decorator over the exploration evaluators. Called serially from the
/// explorer loop (not thread-safe by design — parallelism lives *inside*
/// the wrapped evaluator, e.g. the batched surrogate forward), so with a
/// deterministic primary and deadline_ms == 0 the full event sequence and
/// RunReport are identical for every thread count.
class GuardedEvaluator {
 public:
  /// @p primary answers (config, attempt); @p report (required) accumulates
  /// every event; @p baseline, when provided, is the ladder's middle rung.
  GuardedEvaluator(AttemptEvaluator primary, GuardOptions options,
                   RunReport* report, Evaluator baseline = {});

  /// Optional batched fast path for *first* attempts: a full batch goes
  /// through one call (e.g. one no-grad surrogate forward); per-point
  /// retries fall back to the scalar primary. Must match the scalar primary
  /// pointwise at attempt 0 (the batched-forward bitwise guarantee).
  void set_batch_primary(BatchEvaluator batch_primary);

  /// Hook invoked with each computed backoff (milliseconds) before a retry.
  /// Defaults to no-op so tests never sleep; production installs a sleep.
  void set_backoff_hook(std::function<void(size_t)> hook);

  /// Attaches a session-wide deadline budget. Every attempt charges its
  /// measured wall-clock cost and every computed backoff charges its full
  /// wait (whether or not the hook really sleeps), so the session's
  /// remaining allowance shrinks as its requests retry. An exhausted or
  /// cancelled budget makes the next evaluation throw ExplorationAborted —
  /// the journal, if any, preserves everything evaluated so far.
  void set_session_budget(std::shared_ptr<DeadlineBudget> budget);

  /// Evaluates one batch under the guard. Always returns batch.size()
  /// objectives; a quarantined point yields {NaN, NaN}, which
  /// ParetoArchive::insert rejects (and the journal records as skipped).
  std::vector<Objective> evaluate(const std::vector<arch::Config>& batch);

  /// The guard as a plain BatchEvaluator (captures `this`; the
  /// GuardedEvaluator must outlive the returned function).
  BatchEvaluator as_batch_evaluator();

  DegradeLevel level() const { return level_; }
  const GuardOptions& options() const { return options_; }

 private:
  /// One guarded call of @p fn; returns the objective when it passed every
  /// check, nullopt otherwise (after charging the report).
  std::optional<Objective> attempt_once(
      const std::function<Objective()>& fn, size_t n_points);
  /// Full retry ladder for one point at the current level.
  Objective evaluate_point(const arch::Config& config);
  /// The ladder below the primary: baseline rung when available, quarantine
  /// otherwise. Used both after exhausted retries and for cancelled points.
  Objective fall_through_ladder(const arch::Config& config);
  /// Records a point-level failure and advances the breaker/ladder.
  void point_failed(const arch::Config& config);
  bool in_band(const Objective& o) const;
  /// Throws ExplorationAborted when the session budget is gone.
  void check_session_budget() const;

  AttemptEvaluator primary_;
  BatchEvaluator batch_primary_;
  Evaluator baseline_;
  GuardOptions options_;
  RunReport* report_;
  std::function<void(size_t)> backoff_hook_;
  std::shared_ptr<DeadlineBudget> budget_;
  DegradeLevel level_ = DegradeLevel::kSurrogate;
  size_t consecutive_failures_ = 0;
  /// Set by attempt_once when a per-call deadline overrun is observed;
  /// cleared at the start of every evaluate() batch. Drives the cooperative
  /// batch-abort above.
  bool deadline_blown_ = false;
};

}  // namespace metadse::explore
