// Crash-safe durability for exploration runs. RunJournal is a CRC-framed
// append-only write-ahead log of every evaluated design point (generation
// index, config, objectives, RNG cursor); alongside it lives an atomic
// rename-based snapshot of the Pareto archive + RNG state, refreshed every N
// generations. Together they give the journaled explorer its resume
// contract: a run killed at any byte boundary replays the longest valid
// journal prefix (optionally fast-forwarded through the snapshot) and
// finishes with an archive bitwise-identical to an uninterrupted run.
//
// Corruption policy, mirroring the checkpoint layer: a torn tail, flipped
// bit, or interleaved garbage silently costs the damaged suffix (those
// points are simply re-evaluated) — it never crashes, never over-allocates,
// and never lets a bad record into the archive. An *identity* mismatch
// (journal written by a different seed / budget / design space) throws: the
// caller asked to resume a run that this is not.
//
// Disk-fault policy (the storage fault domain, DESIGN.md §14): every write
// goes through core::io and can fail — really or by chaos injection — with
// EIO/ENOSPC/short write at any byte. A failed append degrades the journal
// to in-memory buffering with bounded reopen-and-flush retries; the run
// keeps its full correctness (the in-process record stream is unaffected)
// and only durability of the buffered tail is at risk, which disk_errors()/
// buffered_records() report. Long-lived runs stay disk-bounded through
// compact(): once a durable snapshot covers every durable record, the
// journal is atomically rewritten as an empty generation whose header
// carries the logical base — a crash at any byte of the handoff leaves
// either the old generation or the new one, never a mix.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/io.hpp"

namespace metadse::explore {

/// One evaluated (or quarantined) design point in draw order.
struct JournalRecord {
  /// Record flag bits.
  enum : uint32_t { kSkipped = 1U << 0 };  ///< quarantined, objectives NaN

  uint32_t gen = 0;        ///< generation (flush) index the point belongs to
  uint32_t flags = 0;
  uint64_t config_id = 0;  ///< arch::DesignSpace::encode() of the config
  double ipc = 0.0;
  double power = 0.0;
  uint64_t cursor = 0;     ///< Rng::cursor() when the generation was drawn
};

/// Append-only evaluation log + snapshot sidecar ("<path>.snapshot").
class RunJournal {
 public:
  /// Identifies the run a journal belongs to; resuming under a different
  /// identity is refused (the replayed stream would diverge immediately).
  struct Identity {
    uint64_t seed = 0;
    uint64_t initial_samples = 0;
    uint64_t iterations = 0;
    uint64_t mutations_per_step = 0;
    uint64_t eval_batch = 0;
    uint64_t num_params = 0;

    bool operator==(const Identity&) const = default;
  };

  /// Point-in-time image of a run at a generation boundary. Archive entries
  /// are stored as encoded configs so the journal stays decode-free; the
  /// explorer owns the DesignSpace round-trip.
  struct Snapshot {
    uint64_t records_consumed = 0;  ///< logical records this image covers
    uint64_t it = 0;                ///< mutation iterations completed
    uint64_t gen = 0;               ///< generation (flush) counter
    std::string rng_state;          ///< tensor::Rng::save_state()
    struct Point {
      uint64_t config_id = 0;
      double ipc = 0.0;
      double power = 0.0;
    };
    std::vector<Point> entries;     ///< archive entries in insertion order
  };

  /// Consecutive failed recovery attempts after which the journal stops
  /// touching the disk for the rest of the run (buffering continues).
  static constexpr size_t kMaxRecoverAttempts = 8;

  /// Opens @p path for a run with @p identity. With @p resume, an existing
  /// file is parsed and records() holds its longest valid prefix (a missing
  /// or headerless file starts fresh; a valid header with a different
  /// identity throws std::runtime_error). Without @p resume, an existing
  /// journal with records (or a rotated base) throws instead of being
  /// clobbered — crash recovery must be an explicit decision. A stale
  /// "<path>.tmp" / "<path>.snapshot.tmp" orphaned by a crash mid-rename is
  /// swept away on open.
  RunJournal(std::string path, const Identity& identity, bool resume);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// The valid record prefix read at open time (empty for a fresh run).
  /// Physical indices: records()[i] is logical record base() + i.
  const std::vector<JournalRecord>& records() const { return records_; }

  /// Logical index of the first on-disk record — the count compacted away
  /// by previous generations. A resume with base() > 0 needs a snapshot
  /// covering at least base() records; without one the caller must
  /// reset_fresh() and re-evaluate from scratch.
  uint64_t base() const { return base_; }

  /// One past the last durable logical record (excludes buffered ones).
  uint64_t logical_end() const;

  /// Discards records [n, end) on disk — called once when a replay diverges
  /// before its journal prefix is exhausted. Subsequent appends continue
  /// from physical record n. No-op when n >= records().size().
  void truncate_to(size_t n);

  /// Appends one CRC-framed record and flushes it to the OS, so a SIGKILL
  /// immediately after an evaluation loses nothing (powering off the host
  /// can still cost the tail — which resume re-evaluates). A write failure
  /// (real or injected) never throws: the record is buffered in memory and
  /// flushed by bounded retries on later appends/syncs; correctness is
  /// preserved, lost durability is reported via disk_errors().
  void append(const JournalRecord& record);

  /// fsync the journal fd (called at snapshot boundaries and on close).
  /// Degraded journals first retry flushing their buffer; still-failing
  /// disks are reported, not thrown.
  void sync();

  size_t appended() const { return appended_; }
  const std::string& path() const { return path_; }
  std::string snapshot_path() const { return path_ + ".snapshot"; }

  /// Write failures absorbed so far (appends, syncs, failed recoveries).
  size_t disk_errors() const { return disk_errors_; }
  /// Records accepted but not durable (in-memory buffer of the degraded
  /// journal; 0 on a healthy disk).
  size_t buffered_records() const { return buffered_records_; }
  /// True once the journal is buffering in memory (degraded durability).
  bool disk_degraded() const { return !pending_.empty() || gave_up_; }
  /// Successful compactions (journal generation handoffs) this run.
  size_t compactions() const { return compactions_; }

  /// Atomically replaces the snapshot sidecar (tmp + fsync + rename +
  /// parent dir fsync). Throws core::io::IoError on failure (injected
  /// ENOSPC included) — the caller decides whether a lost snapshot matters
  /// (for the explorer it is only a lost fast path).
  void write_snapshot(const Snapshot& snapshot);

  /// The snapshot sidecar, when it exists, checks out (CRC + identity), and
  /// is consistent with the journal: it may not claim records the journal
  /// does not have (a power loss can leave a snapshot ahead of an un-fsynced
  /// journal tail) nor fewer than the rotated base (impossible except by
  /// tampering). Never throws for corruption — a bad snapshot is just a
  /// lost fast path.
  std::optional<Snapshot> load_snapshot() const;

  /// Journal rotation: atomically replaces the file with an empty
  /// generation based at @p consumed, reclaiming the disk the snapshot made
  /// redundant. Caller contract: a durable snapshot covering exactly
  /// @p consumed logical records exists, and consumed == logical_end()
  /// (anything else throws std::logic_error). Returns false — old
  /// generation left fully intact — when the disk is degraded or the
  /// handoff fails. On success records() is empty and base() == consumed.
  bool compact(uint64_t consumed);

  /// Abandons the on-disk state entirely and restarts as a fresh journal
  /// (base 0, no records) — the escape hatch for a rotated journal whose
  /// snapshot died (nothing left to replay against). Also removes the
  /// snapshot sidecar.
  void reset_fresh();

 private:
  void open_for_append(uint64_t keep_bytes, bool write_header);
  /// Absorbs a failed write: buffers @p frame and enters degraded mode.
  void degrade(const std::string& frame);
  /// Bounded reopen-and-flush retry; true when the buffer fully drained.
  bool try_recover();

  std::string path_;
  Identity identity_;
  std::vector<JournalRecord> records_;
  uint64_t base_ = 0;
  uint64_t valid_bytes_ = 0;  ///< header + valid records durable on disk
  size_t appended_ = 0;
  core::io::File file_;

  // Degraded-mode state: byte chunks that belong at valid_bytes_ onward.
  std::vector<std::string> pending_;
  size_t buffered_records_ = 0;
  size_t disk_errors_ = 0;
  size_t recover_attempts_ = 0;
  bool gave_up_ = false;
  size_t compactions_ = 0;
};

}  // namespace metadse::explore
