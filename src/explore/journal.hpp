// Crash-safe durability for exploration runs. RunJournal is a CRC-framed
// append-only write-ahead log of every evaluated design point (generation
// index, config, objectives, RNG cursor); alongside it lives an atomic
// rename-based snapshot of the Pareto archive + RNG state, refreshed every N
// generations. Together they give the journaled explorer its resume
// contract: a run killed at any byte boundary replays the longest valid
// journal prefix (optionally fast-forwarded through the snapshot) and
// finishes with an archive bitwise-identical to an uninterrupted run.
//
// Corruption policy, mirroring the checkpoint layer: a torn tail, flipped
// bit, or interleaved garbage silently costs the damaged suffix (those
// points are simply re-evaluated) — it never crashes, never over-allocates,
// and never lets a bad record into the archive. An *identity* mismatch
// (journal written by a different seed / budget / design space) throws: the
// caller asked to resume a run that this is not.
#pragma once

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

namespace metadse::explore {

/// One evaluated (or quarantined) design point in draw order.
struct JournalRecord {
  /// Record flag bits.
  enum : uint32_t { kSkipped = 1U << 0 };  ///< quarantined, objectives NaN

  uint32_t gen = 0;        ///< generation (flush) index the point belongs to
  uint32_t flags = 0;
  uint64_t config_id = 0;  ///< arch::DesignSpace::encode() of the config
  double ipc = 0.0;
  double power = 0.0;
  uint64_t cursor = 0;     ///< Rng::cursor() when the generation was drawn
};

/// Append-only evaluation log + snapshot sidecar ("<path>.snapshot").
class RunJournal {
 public:
  /// Identifies the run a journal belongs to; resuming under a different
  /// identity is refused (the replayed stream would diverge immediately).
  struct Identity {
    uint64_t seed = 0;
    uint64_t initial_samples = 0;
    uint64_t iterations = 0;
    uint64_t mutations_per_step = 0;
    uint64_t eval_batch = 0;
    uint64_t num_params = 0;

    bool operator==(const Identity&) const = default;
  };

  /// Point-in-time image of a run at a generation boundary. Archive entries
  /// are stored as encoded configs so the journal stays decode-free; the
  /// explorer owns the DesignSpace round-trip.
  struct Snapshot {
    uint64_t records_consumed = 0;  ///< journal records this image covers
    uint64_t it = 0;                ///< mutation iterations completed
    uint64_t gen = 0;               ///< generation (flush) counter
    std::string rng_state;          ///< tensor::Rng::save_state()
    struct Point {
      uint64_t config_id = 0;
      double ipc = 0.0;
      double power = 0.0;
    };
    std::vector<Point> entries;     ///< archive entries in insertion order
  };

  /// Opens @p path for a run with @p identity. With @p resume, an existing
  /// file is parsed and records() holds its longest valid prefix (a missing
  /// or headerless file starts fresh; a valid header with a different
  /// identity throws std::runtime_error). Without @p resume, an existing
  /// journal with records throws instead of being clobbered — crash
  /// recovery must be an explicit decision.
  RunJournal(std::string path, const Identity& identity, bool resume);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// The valid record prefix read at open time (empty for a fresh run).
  const std::vector<JournalRecord>& records() const { return records_; }

  /// Discards records [n, end) on disk — called once when a replay diverges
  /// before its journal prefix is exhausted. Subsequent appends continue
  /// from record n. No-op when n >= records().size().
  void truncate_to(size_t n);

  /// Appends one CRC-framed record and flushes it to the OS, so a SIGKILL
  /// immediately after an evaluation loses nothing (powering off the host
  /// can still cost the tail — which resume re-evaluates).
  void append(const JournalRecord& record);

  /// fsync the journal fd (called at snapshot boundaries and on close).
  void sync();

  size_t appended() const { return appended_; }
  const std::string& path() const { return path_; }
  std::string snapshot_path() const { return path_ + ".snapshot"; }

  /// Atomically replaces the snapshot sidecar (tmp + fsync + rename).
  void write_snapshot(const Snapshot& snapshot);

  /// The snapshot sidecar, when it exists, checks out (CRC + identity), and
  /// does not claim records the journal no longer has (a power loss can
  /// leave a snapshot ahead of an un-fsynced journal tail; such a snapshot
  /// is ignored and the run falls back to full replay). Never throws for
  /// corruption — a bad snapshot is just a lost fast path.
  std::optional<Snapshot> load_snapshot() const;

 private:
  void open_for_append(uint64_t keep_bytes, bool write_header);

  std::string path_;
  Identity identity_;
  std::vector<JournalRecord> records_;
  uint64_t valid_bytes_ = 0;  ///< header + valid records on disk
  size_t appended_ = 0;
  std::FILE* file_ = nullptr;
};

}  // namespace metadse::explore
