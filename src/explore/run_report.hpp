// Structured accounting for one exploration run — the explore-stage mirror
// of data::GenerationReport. Filled cooperatively by the journaled explorer
// (replay/snapshot fields) and the GuardedEvaluator (retry/timeout/degrade
// fields) so a run that survived faults is visible, never silent.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "arch/design_space.hpp"

namespace metadse::explore {

/// Which rung of the degradation ladder is answering evaluator queries.
enum class DegradeLevel {
  kSurrogate = 0,   ///< the primary (adapted-predictor) evaluator
  kBaseline = 1,    ///< the tree-ensemble / analytical fallback
  kQuarantine = 2,  ///< evaluations are skipped and quarantined
};

inline const char* to_string(DegradeLevel level) {
  switch (level) {
    case DegradeLevel::kSurrogate: return "surrogate";
    case DegradeLevel::kBaseline: return "baseline";
    case DegradeLevel::kQuarantine: return "quarantine";
  }
  return "?";
}

/// What happened during one explore() run. Every retry, timeout, downgrade,
/// journal replay, and snapshot is accounted for here; the CLI prints the
/// summary whenever the run was anything but clean.
struct RunReport {
  // -- evaluation accounting (GuardedEvaluator) -------------------------------
  size_t evaluated = 0;     ///< points answered live by the primary evaluator
  size_t retries = 0;       ///< re-attempts after a failed evaluation
  size_t failures = 0;      ///< SimulationFailure attempts observed
  size_t timeouts = 0;      ///< SimulationTimeout attempts observed
  size_t deadline_overruns = 0;  ///< calls that exceeded the wall-clock deadline
  size_t nonfinite = 0;     ///< attempts rejected for NaN/Inf objectives
  size_t out_of_band = 0;   ///< finite objectives outside the sanity band
  size_t backoff_ms = 0;    ///< total backoff the retry policy charged
  size_t breaker_trips = 0; ///< times the circuit breaker opened
  size_t baseline_evals = 0; ///< points answered by the baseline rung
  /// Points whose primary attempts were skipped by the cooperative
  /// batch-abort after a blown per-call deadline (each still walked the
  /// cheap rungs of the ladder).
  size_t cancelled = 0;
  /// The run aborted because its session deadline budget was exhausted or
  /// cancelled (watchdog / shutdown); the journal preserves progress.
  bool budget_exhausted = false;
  /// Points that exhausted every rung and were skipped.
  std::vector<arch::Config> quarantined;
  /// Where the degradation ladder ended when the run finished.
  DegradeLevel final_level = DegradeLevel::kSurrogate;
  /// A reduced-precision run was requested but the pre-run quantization
  /// error contract (Spearman rank correlation vs fp32) failed, so the run
  /// executed at fp32 instead (DESIGN.md §15).
  bool quant_contract_tripped = false;

  // -- durability accounting (RunJournal) -------------------------------------
  size_t replayed = 0;         ///< points served from the journal, not evaluated
  size_t journal_records = 0;  ///< records appended by this run
  size_t snapshots = 0;        ///< archive snapshots written by this run
  bool resumed = false;        ///< a prior journal/snapshot seeded this run
  bool snapshot_restored = false;  ///< the fast path (snapshot) was used
  // -- storage fault domain (DESIGN.md §14) -----------------------------------
  size_t journal_disk_errors = 0;  ///< write failures the journal absorbed
  /// Records still in the degraded journal's memory buffer at run end — the
  /// durability a crash right now would cost (correctness is unaffected).
  size_t journal_buffered = 0;
  size_t journal_compactions = 0;  ///< rotation handoffs completed
  size_t snapshot_failures = 0;    ///< snapshot writes that failed (lost fast path)
  /// A rotated journal had no usable snapshot to anchor its base; the run
  /// restarted its log from scratch and re-evaluated (correct, just slower).
  bool journal_reset = false;

  size_t dropped() const { return quarantined.size(); }
  bool degraded() const {
    return final_level != DegradeLevel::kSurrogate || dropped() > 0 ||
           baseline_evals > 0;
  }

  /// One-line human summary ("812 evaluated, 40 replayed, 3 retries, ...").
  std::string summary() const {
    std::ostringstream os;
    os << evaluated << " evaluated";
    if (replayed > 0) os << ", " << replayed << " replayed from journal";
    if (retries > 0) os << ", " << retries << " retries";
    if (failures > 0) os << ", " << failures << " failures";
    if (timeouts > 0) os << ", " << timeouts << " timeouts";
    if (deadline_overruns > 0) {
      os << ", " << deadline_overruns << " deadline overruns";
    }
    if (nonfinite > 0) os << ", " << nonfinite << " non-finite rejected";
    if (out_of_band > 0) os << ", " << out_of_band << " out-of-band rejected";
    if (breaker_trips > 0) os << ", " << breaker_trips << " breaker trips";
    if (cancelled > 0) os << ", " << cancelled << " cancelled";
    if (baseline_evals > 0) {
      os << ", " << baseline_evals << " baseline evaluations";
    }
    if (budget_exhausted) os << ", session budget exhausted";
    if (dropped() > 0) os << ", " << dropped() << " quarantined";
    if (snapshots > 0) os << ", " << snapshots << " snapshots";
    if (snapshot_failures > 0) {
      os << ", " << snapshot_failures << " snapshot writes failed";
    }
    if (journal_disk_errors > 0) {
      os << ", " << journal_disk_errors << " journal disk errors";
    }
    if (journal_buffered > 0) {
      os << ", " << journal_buffered << " records not durable";
    }
    if (journal_compactions > 0) {
      os << ", " << journal_compactions << " journal compactions";
    }
    if (journal_reset) os << ", journal reset (snapshot lost after rotation)";
    if (quant_contract_tripped) {
      os << ", quant contract tripped (ran fp32)";
    }
    if (resumed) {
      os << ", resumed" << (snapshot_restored ? " (snapshot)" : " (replay)");
    }
    if (final_level != DegradeLevel::kSurrogate) {
      os << ", degraded to " << to_string(final_level);
    }
    return os.str();
  }
};

}  // namespace metadse::explore
