#include "explore/journal.hpp"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace metadse::explore {

namespace {

constexpr uint32_t kJournalMagic = 0x4D444A4CU;   // "MDJL"
constexpr uint32_t kSnapshotMagic = 0x4D445353U;  // "MDSS"
// v2: the header carries the logical base a rotated journal starts at.
constexpr uint32_t kVersion = 2;

// Fixed frame sizes keep the reader trivially bounded: no record can size an
// allocation, and a torn tail is at most one partial frame.
constexpr size_t kHeaderBytes = 4 + 4 + 6 * 8 + 8 + 4;  // magic,ver,id,base,crc
constexpr size_t kRecordBytes = 4 + 4 + 8 + 8 + 8 + 8 + 4;
constexpr size_t kMaxRngStateBytes = 16384;

template <typename T>
void put_pod(std::string& out, const T& v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get_pod(const char* p) {
  T v{};
  std::memcpy(&v, p, sizeof(T));
  return v;
}

void put_identity(std::string& out, const RunJournal::Identity& id) {
  put_pod(out, id.seed);
  put_pod(out, id.initial_samples);
  put_pod(out, id.iterations);
  put_pod(out, id.mutations_per_step);
  put_pod(out, id.eval_batch);
  put_pod(out, id.num_params);
}

RunJournal::Identity get_identity(const char* p) {
  RunJournal::Identity id;
  id.seed = get_pod<uint64_t>(p);
  id.initial_samples = get_pod<uint64_t>(p + 8);
  id.iterations = get_pod<uint64_t>(p + 16);
  id.mutations_per_step = get_pod<uint64_t>(p + 24);
  id.eval_batch = get_pod<uint64_t>(p + 32);
  id.num_params = get_pod<uint64_t>(p + 40);
  return id;
}

std::string header_bytes(const RunJournal::Identity& id, uint64_t base) {
  std::string out;
  put_pod(out, kJournalMagic);
  put_pod(out, kVersion);
  put_identity(out, id);
  put_pod(out, base);
  put_pod(out, nn::crc32(out.data(), out.size()));
  return out;
}

std::string record_bytes(const JournalRecord& r) {
  std::string out;
  put_pod(out, r.gen);
  put_pod(out, r.flags);
  put_pod(out, r.config_id);
  put_pod(out, r.ipc);
  put_pod(out, r.power);
  put_pod(out, r.cursor);
  put_pod(out, nn::crc32(out.data(), out.size()));
  return out;
}

/// Reads @p path fully; empty string when it does not exist or is unreadable
/// (the journal layer treats both as "nothing to recover").
std::string slurp_if_present(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return {};
  std::ostringstream ss;
  ss << is.rdbuf();
  if (!is) return {};
  return std::move(ss).str();
}

}  // namespace

RunJournal::RunJournal(std::string path, const Identity& identity, bool resume)
    : path_(std::move(path)), identity_(identity) {
  if (path_.empty()) {
    throw std::invalid_argument("RunJournal: empty path");
  }
  // A crash between writing "<x>.tmp" and renaming it leaves an orphan that
  // no reader will ever look at; sweep it so disk usage stays bounded.
  core::io::remove_stale_tmp(path_);
  core::io::remove_stale_tmp(snapshot_path());

  const std::string bytes = slurp_if_present(path_);

  bool header_ok = false;
  if (bytes.size() >= kHeaderBytes &&
      get_pod<uint32_t>(bytes.data()) == kJournalMagic &&
      get_pod<uint32_t>(bytes.data() + 4) == kVersion &&
      get_pod<uint32_t>(bytes.data() + kHeaderBytes - 4) ==
          nn::crc32(bytes.data(), kHeaderBytes - 4)) {
    header_ok = true;
    const Identity found = get_identity(bytes.data() + 8);
    if (found != identity_) {
      throw std::runtime_error(
          "RunJournal: " + path_ +
          " was written by a different run configuration (seed/budget/space "
          "mismatch); refusing to mix streams");
    }
    base_ = get_pod<uint64_t>(bytes.data() + 56);
  }

  if (header_ok) {
    // Longest valid record prefix: stop at the first short or CRC-failing
    // frame. Everything after it (torn tail, bit rot, interleaved garbage)
    // is discarded and will simply be re-evaluated.
    size_t off = kHeaderBytes;
    while (off + kRecordBytes <= bytes.size()) {
      const char* p = bytes.data() + off;
      if (get_pod<uint32_t>(p + kRecordBytes - 4) !=
          nn::crc32(p, kRecordBytes - 4)) {
        break;
      }
      JournalRecord r;
      r.gen = get_pod<uint32_t>(p);
      r.flags = get_pod<uint32_t>(p + 4);
      r.config_id = get_pod<uint64_t>(p + 8);
      r.ipc = get_pod<double>(p + 16);
      r.power = get_pod<double>(p + 24);
      r.cursor = get_pod<uint64_t>(p + 32);
      records_.push_back(r);
      off += kRecordBytes;
    }
    if (!resume && (!records_.empty() || base_ > 0)) {
      throw std::runtime_error(
          "RunJournal: " + path_ + " already holds " +
          std::to_string(base_ + records_.size()) +
          " records; resume the run or remove the file");
    }
    if (!resume) records_.clear();
    open_for_append(kHeaderBytes + records_.size() * kRecordBytes,
                    /*write_header=*/false);
    return;
  }

  // Missing file, or one too damaged to even identify: start fresh.
  records_.clear();
  base_ = 0;
  open_for_append(0, /*write_header=*/true);
}

void RunJournal::open_for_append(uint64_t keep_bytes, bool write_header) {
  if (write_header) {
    // fopen failure is a misconfiguration (bad path) and throws; a *write*
    // failure is a disk fault and degrades like any other.
    file_ = core::io::File(path_, "wb", "journal.write");
    const std::string header = header_bytes(identity_, base_);
    try {
      file_.write(header.data(), header.size());
      valid_bytes_ = kHeaderBytes;
    } catch (const core::io::IoError&) {
      ++disk_errors_;
      file_.close();
      valid_bytes_ = 0;
      pending_.push_back(header);
    }
    return;
  }
  std::error_code ec;
  std::filesystem::resize_file(path_, keep_bytes, ec);
  if (ec) {
    throw std::runtime_error("RunJournal: cannot truncate " + path_ + ": " +
                             ec.message());
  }
  file_ = core::io::File(path_, "ab", "journal.write");
  valid_bytes_ = keep_bytes;
}

RunJournal::~RunJournal() {
  sync();
  file_.close();
}

uint64_t RunJournal::logical_end() const {
  if (valid_bytes_ <= kHeaderBytes) return base_;
  return base_ + (valid_bytes_ - kHeaderBytes) / kRecordBytes;
}

void RunJournal::truncate_to(size_t n) {
  if (n >= records_.size()) return;
  if (appended_ > 0) {
    throw std::logic_error(
        "RunJournal::truncate_to: replay divergence after live appends");
  }
  file_.close();
  records_.resize(n);
  open_for_append(kHeaderBytes + n * kRecordBytes, /*write_header=*/false);
}

void RunJournal::degrade(const std::string& frame) {
  file_.close();
  pending_.push_back(frame);
  ++buffered_records_;
}

bool RunJournal::try_recover() {
  if (gave_up_) return false;
  file_.close();
  try {
    if (valid_bytes_ == 0) {
      file_ = core::io::File(path_, "wb", "journal.write");
    } else {
      // A torn injected write may have left garbage past the durable
      // prefix; cut it before appending.
      std::error_code ec;
      std::filesystem::resize_file(path_, valid_bytes_, ec);
      if (ec) {
        throw core::io::IoError(
            "RunJournal: cannot truncate " + path_ + ": " + ec.message(),
            EIO);
      }
      file_ = core::io::File(path_, "ab", "journal.write");
    }
    while (!pending_.empty()) {
      const std::string& chunk = pending_.front();
      file_.write(chunk.data(), chunk.size());
      valid_bytes_ += chunk.size();
      if (chunk.size() == kRecordBytes) --buffered_records_;
      pending_.erase(pending_.begin());
    }
  } catch (const core::io::IoError&) {
    ++disk_errors_;
    ++recover_attempts_;
    file_.close();
    if (recover_attempts_ >= kMaxRecoverAttempts) gave_up_ = true;
    return false;
  }
  recover_attempts_ = 0;
  return true;
}

void RunJournal::append(const JournalRecord& record) {
  const std::string frame = record_bytes(record);
  ++appended_;
  if (!pending_.empty() || gave_up_ || !file_.is_open()) {
    pending_.push_back(frame);
    ++buffered_records_;
    if (!gave_up_) try_recover();
    return;
  }
  try {
    file_.write(frame.data(), frame.size());
    valid_bytes_ += kRecordBytes;
  } catch (const core::io::IoError&) {
    ++disk_errors_;
    degrade(frame);
  }
}

void RunJournal::sync() {
  if (!pending_.empty() && !gave_up_) try_recover();
  if (!pending_.empty() || !file_.is_open()) return;
  try {
    file_.sync();
  } catch (const core::io::IoError&) {
    ++disk_errors_;
  }
}

void RunJournal::write_snapshot(const Snapshot& snapshot) {
  std::string out;
  put_pod(out, kSnapshotMagic);
  put_pod(out, kVersion);
  put_identity(out, identity_);
  put_pod(out, snapshot.records_consumed);
  put_pod(out, snapshot.it);
  put_pod(out, snapshot.gen);
  put_pod(out, static_cast<uint32_t>(snapshot.rng_state.size()));
  out.append(snapshot.rng_state);
  put_pod(out, static_cast<uint64_t>(snapshot.entries.size()));
  for (const auto& e : snapshot.entries) {
    put_pod(out, e.config_id);
    put_pod(out, e.ipc);
    put_pod(out, e.power);
  }
  put_pod(out, nn::crc32(out.data(), out.size()));
  // The journal must be durable before the snapshot that claims to cover it
  // (a snapshot ahead of the journal would be ignored at load time).
  sync();
  core::io::atomic_write_file(snapshot_path(), out, "snapshot.write");
}

std::optional<RunJournal::Snapshot> RunJournal::load_snapshot() const {
  const std::string bytes = slurp_if_present(snapshot_path());
  // Fixed part up to rng length: magic, version, identity, 3 u64, u32 len.
  constexpr size_t kFixed = 4 + 4 + 6 * 8 + 3 * 8 + 4;
  if (bytes.size() < kFixed + 8 + 4) return std::nullopt;
  if (get_pod<uint32_t>(bytes.data() + bytes.size() - 4) !=
      nn::crc32(bytes.data(), bytes.size() - 4)) {
    return std::nullopt;
  }
  if (get_pod<uint32_t>(bytes.data()) != kSnapshotMagic ||
      get_pod<uint32_t>(bytes.data() + 4) != kVersion ||
      get_identity(bytes.data() + 8) != identity_) {
    return std::nullopt;
  }
  Snapshot s;
  s.records_consumed = get_pod<uint64_t>(bytes.data() + 56);
  s.it = get_pod<uint64_t>(bytes.data() + 64);
  s.gen = get_pod<uint64_t>(bytes.data() + 72);
  const uint32_t rng_len = get_pod<uint32_t>(bytes.data() + 80);
  if (rng_len > kMaxRngStateBytes || kFixed + rng_len + 8 + 4 > bytes.size()) {
    return std::nullopt;
  }
  s.rng_state.assign(bytes.data() + kFixed, rng_len);
  const size_t entries_off = kFixed + rng_len;
  const uint64_t n = get_pod<uint64_t>(bytes.data() + entries_off);
  // The entry count must match the remaining payload exactly — a corrupt
  // count can never size an allocation.
  if (n > bytes.size() / 24 ||
      bytes.size() - entries_off - 8 - 4 != n * 24) {
    return std::nullopt;
  }
  s.entries.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const char* p = bytes.data() + entries_off + 8 + i * 24;
    Snapshot::Point e;
    e.config_id = get_pod<uint64_t>(p);
    e.ipc = get_pod<double>(p + 8);
    e.power = get_pod<double>(p + 16);
    s.entries.push_back(e);
  }
  // A snapshot claiming records the journal no longer has (a power loss ate
  // an un-fsynced tail) would leave a hole in the log; fall back to replay.
  // One claiming fewer than the rotated base is equally inconsistent — the
  // compacted prefix only exists inside a snapshot that covers it.
  if (s.records_consumed > base_ + records_.size() ||
      s.records_consumed < base_) {
    return std::nullopt;
  }
  return s;
}

bool RunJournal::compact(uint64_t consumed) {
  if (consumed != logical_end()) {
    throw std::logic_error(
        "RunJournal::compact: snapshot must cover exactly the durable "
        "journal (consumed=" + std::to_string(consumed) + ", durable end=" +
        std::to_string(logical_end()) + ")");
  }
  if (disk_degraded() || !file_.is_open()) return false;
  try {
    file_.sync();
  } catch (const core::io::IoError&) {
    ++disk_errors_;
    return false;
  }
  file_.close();
  // Crash-safe generation handoff: the new (empty, rebased) generation is
  // published with the same tmp + rename + dir-fsync protocol as a
  // snapshot. Any failure leaves the old generation untouched on disk.
  try {
    core::io::atomic_write_file(path_, header_bytes(identity_, consumed),
                                "journal.write");
  } catch (const core::io::IoError&) {
    ++disk_errors_;
    try {
      file_ = core::io::File(path_, "ab", "journal.write");
    } catch (const core::io::IoError&) {
      ++disk_errors_;  // appends will buffer until a recovery succeeds
    }
    return false;
  }
  base_ = consumed;
  records_.clear();
  valid_bytes_ = kHeaderBytes;
  ++compactions_;
  try {
    file_ = core::io::File(path_, "ab", "journal.write");
  } catch (const core::io::IoError&) {
    ++disk_errors_;  // appends will buffer until a recovery succeeds
  }
  return true;
}

void RunJournal::reset_fresh() {
  file_.close();
  records_.clear();
  pending_.clear();
  buffered_records_ = 0;
  base_ = 0;
  std::error_code ec;
  std::filesystem::remove(snapshot_path(), ec);
  core::io::remove_stale_tmp(path_);
  core::io::remove_stale_tmp(snapshot_path());
  open_for_append(0, /*write_header=*/true);
}

}  // namespace metadse::explore
