#include "explore/guarded.hpp"

#include <chrono>
#include <cmath>
#include <optional>
#include <utility>

#include "sim/fault_injection.hpp"

namespace metadse::explore {

namespace {

constexpr Objective kQuarantinedObjective{
    std::numeric_limits<double>::quiet_NaN(),
    std::numeric_limits<double>::quiet_NaN()};

/// Milliseconds elapsed since @p start.
size_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<size_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

GuardedEvaluator::GuardedEvaluator(AttemptEvaluator primary,
                                   GuardOptions options, RunReport* report,
                                   Evaluator baseline)
    : primary_(std::move(primary)),
      baseline_(std::move(baseline)),
      options_(options),
      report_(report) {
  if (!primary_) {
    throw std::invalid_argument("GuardedEvaluator: null primary evaluator");
  }
  if (report_ == nullptr) {
    throw std::invalid_argument("GuardedEvaluator: null report");
  }
  if (options_.breaker_threshold == 0) {
    throw std::invalid_argument(
        "GuardedEvaluator: breaker_threshold must be >= 1");
  }
  if (options_.start_level == DegradeLevel::kBaseline && !baseline_) {
    throw std::invalid_argument(
        "GuardedEvaluator: start_level kBaseline requires a baseline "
        "evaluator");
  }
  level_ = options_.start_level;
  report_->final_level = level_;
}

void GuardedEvaluator::set_batch_primary(BatchEvaluator batch_primary) {
  batch_primary_ = std::move(batch_primary);
}

void GuardedEvaluator::set_backoff_hook(std::function<void(size_t)> hook) {
  backoff_hook_ = std::move(hook);
}

void GuardedEvaluator::set_session_budget(
    std::shared_ptr<DeadlineBudget> budget) {
  budget_ = std::move(budget);
}

void GuardedEvaluator::check_session_budget() const {
  if (!budget_) return;
  if (budget_->cancelled()) {
    report_->budget_exhausted = true;
    throw ExplorationAborted(
        "exploration aborted: session cancelled (watchdog or shutdown); "
        "journal preserves progress");
  }
  if (budget_->exhausted()) {
    report_->budget_exhausted = true;
    throw ExplorationAborted(
        "exploration aborted: session deadline budget exhausted after " +
        std::to_string(budget_->consumed_ms()) +
        " ms; journal preserves progress");
  }
}

bool GuardedEvaluator::in_band(const Objective& o) const {
  return o.ipc >= options_.ipc_min && o.ipc <= options_.ipc_max &&
         o.power >= options_.power_min && o.power <= options_.power_max;
}

std::optional<Objective> GuardedEvaluator::attempt_once(
    const std::function<Objective()>& fn, size_t n_points) {
  check_session_budget();
  const auto start = std::chrono::steady_clock::now();
  const size_t budget_ms = options_.deadline_ms * n_points;
  struct ChargeOnExit {
    // Whatever the attempt did — returned, threw, blew its deadline — its
    // wall-clock cost is charged to the session budget exactly once.
    std::chrono::steady_clock::time_point start;
    DeadlineBudget* budget;
    ~ChargeOnExit() {
      if (budget != nullptr) budget->charge(elapsed_ms(start));
    }
  } charge{start, budget_.get()};
  Objective o;
  try {
    o = fn();
  } catch (const sim::SimulationTimeout&) {
    ++report_->timeouts;
    return std::nullopt;
  } catch (const sim::SimulationFailure&) {
    ++report_->failures;
    return std::nullopt;
  } catch (const ExplorationAborted&) {
    throw;  // our own abort, never contained
  } catch (const std::exception&) {
    // Any other evaluator exception is contained as a generic failure —
    // one bad point must not take down the run.
    ++report_->failures;
    return std::nullopt;
  }
  if (options_.deadline_ms > 0 && elapsed_ms(start) > budget_ms) {
    // Detection, not preemption: the call already returned, but a result
    // that blew its wall-clock budget is treated as a timeout and dropped.
    // The overrun also arms the cooperative batch-abort (deadline_blown_),
    // so the rest of the current batch can skip its doomed attempts.
    ++report_->deadline_overruns;
    ++report_->timeouts;
    deadline_blown_ = true;
    return std::nullopt;
  }
  if (!std::isfinite(o.ipc) || !std::isfinite(o.power)) {
    ++report_->nonfinite;
    return std::nullopt;
  }
  if (!in_band(o)) {
    ++report_->out_of_band;
    return std::nullopt;
  }
  return o;
}

void GuardedEvaluator::point_failed(const arch::Config& config) {
  (void)config;
  if (++consecutive_failures_ < options_.breaker_threshold) return;
  // Breaker opens: downgrade one rung per policy.
  ++report_->breaker_trips;
  consecutive_failures_ = 0;
  switch (options_.policy) {
    case DegradePolicy::kFailFast:
      report_->final_level = level_;
      throw ExplorationAborted(
          "exploration aborted: " +
          std::to_string(options_.breaker_threshold) +
          " consecutive evaluation failures (journal preserves progress)");
    case DegradePolicy::kLadder:
      level_ = (level_ == DegradeLevel::kSurrogate && baseline_)
                   ? DegradeLevel::kBaseline
                   : DegradeLevel::kQuarantine;
      break;
    case DegradePolicy::kSkip:
      level_ = DegradeLevel::kQuarantine;
      break;
  }
  report_->final_level = level_;
}

Objective GuardedEvaluator::fall_through_ladder(const arch::Config& config) {
  if (options_.policy == DegradePolicy::kLadder && baseline_) {
    const auto o =
        attempt_once([&] { return baseline_(config); }, /*n_points=*/1);
    if (o) {
      ++report_->baseline_evals;
      return *o;
    }
  }
  report_->quarantined.push_back(config);
  return kQuarantinedObjective;
}

Objective GuardedEvaluator::evaluate_point(const arch::Config& config) {
  if (level_ == DegradeLevel::kQuarantine) {
    report_->quarantined.push_back(config);
    return kQuarantinedObjective;
  }

  if (level_ == DegradeLevel::kSurrogate) {
    for (size_t attempt = 0; attempt <= options_.max_retries; ++attempt) {
      if (attempt > 0) {
        // A blown per-call deadline means further attempts are doomed to
        // the same overrun — abandon the retry ladder for this point too.
        if (options_.cancel_batch_on_deadline && deadline_blown_) break;
        const size_t backoff = std::min(
            options_.backoff_cap_ms, options_.backoff_base_ms << (attempt - 1));
        ++report_->retries;
        report_->backoff_ms += backoff;
        if (budget_) budget_->charge(backoff);
        if (backoff_hook_) backoff_hook_(backoff);
      }
      const auto o = attempt_once(
          [&] { return primary_(config, attempt); }, /*n_points=*/1);
      if (o) {
        ++report_->evaluated;
        consecutive_failures_ = 0;
        return *o;
      }
    }
    // Primary exhausted its budget for this point: charge the breaker, then
    // fall through the ladder for the point itself.
    point_failed(config);
    return fall_through_ladder(config);
  }

  // DegradeLevel::kBaseline: the surrogate rung is gone; the baseline is an
  // in-process deterministic model, so one guarded attempt suffices.
  const auto o = attempt_once([&] { return baseline_(config); },
                              /*n_points=*/1);
  if (o) {
    ++report_->baseline_evals;
    consecutive_failures_ = 0;
    return *o;
  }
  point_failed(config);
  report_->quarantined.push_back(config);
  return kQuarantinedObjective;
}

std::vector<Objective> GuardedEvaluator::evaluate(
    const std::vector<arch::Config>& batch) {
  std::vector<Objective> out(batch.size(), kQuarantinedObjective);
  std::vector<size_t> pending;  // indices still unanswered
  deadline_blown_ = false;      // the batch-abort flag is per-batch
  check_session_budget();

  if (batch_primary_ && level_ == DegradeLevel::kSurrogate &&
      batch.size() > 1) {
    // Batched first attempts: one call answers the whole batch; points that
    // fail a sanity check (or the whole call, if it throws) retry on the
    // scalar path from attempt 1.
    bool call_ok = false;
    std::vector<Objective> first;
    const auto start = std::chrono::steady_clock::now();
    try {
      first = batch_primary_(batch);
      if (first.size() != batch.size()) {
        throw sim::SimulationFailure(
            "guarded: batch primary returned " +
            std::to_string(first.size()) + " objectives for " +
            std::to_string(batch.size()) + " configs");
      }
      if (options_.deadline_ms > 0 &&
          elapsed_ms(start) > options_.deadline_ms * batch.size()) {
        ++report_->deadline_overruns;
        ++report_->timeouts;
        deadline_blown_ = true;
      } else {
        call_ok = true;
      }
    } catch (const sim::SimulationTimeout&) {
      ++report_->timeouts;
    } catch (const sim::SimulationFailure&) {
      ++report_->failures;
    } catch (const ExplorationAborted&) {
      throw;
    } catch (const std::exception&) {
      ++report_->failures;
    }
    if (budget_) budget_->charge(elapsed_ms(start));
    for (size_t i = 0; i < batch.size(); ++i) {
      if (call_ok) {
        const Objective& o = first[i];
        if (std::isfinite(o.ipc) && std::isfinite(o.power) && in_band(o)) {
          out[i] = o;
          ++report_->evaluated;
          consecutive_failures_ = 0;
          continue;
        }
        if (!std::isfinite(o.ipc) || !std::isfinite(o.power)) {
          ++report_->nonfinite;
        } else {
          ++report_->out_of_band;
        }
      }
      pending.push_back(i);
    }
  } else {
    pending.resize(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) pending[i] = i;
  }

  for (size_t i : pending) {
    if (options_.cancel_batch_on_deadline && deadline_blown_ &&
        level_ == DegradeLevel::kSurrogate) {
      // Cooperative batch-abort: a blown per-call deadline already told us
      // the primary is too slow for this batch — skip the remaining primary
      // attempts instead of letting each point run to its own overrun. The
      // skipped points still get the cheap rungs below.
      ++report_->cancelled;
      out[i] = fall_through_ladder(batch[i]);
      continue;
    }
    out[i] = evaluate_point(batch[i]);
  }
  return out;
}

BatchEvaluator GuardedEvaluator::as_batch_evaluator() {
  return [this](const std::vector<arch::Config>& batch) {
    return evaluate(batch);
  };
}

}  // namespace metadse::explore
