#include "explore/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metadse::explore {

bool dominates(const Objective& a, const Objective& b) {
  const bool no_worse = a.ipc >= b.ipc && a.power <= b.power;
  const bool better = a.ipc > b.ipc || a.power < b.power;
  return no_worse && better;
}

bool ParetoArchive::insert(arch::Config config, Objective objective) {
  if (!std::isfinite(objective.ipc) || !std::isfinite(objective.power)) {
    return false;
  }
  for (const auto& e : entries_) {
    if (dominates(e.objective, objective)) return false;
    if (e.objective.ipc == objective.ipc &&
        e.objective.power == objective.power) {
      return false;  // exact duplicate
    }
  }
  std::erase_if(entries_, [&](const Entry& e) {
    return dominates(objective, e.objective);
  });
  entries_.push_back({std::move(config), objective});
  return true;
}

ParetoArchive ParetoArchive::from_entries(std::vector<Entry> entries) {
  for (const auto& e : entries) {
    if (!std::isfinite(e.objective.ipc) || !std::isfinite(e.objective.power)) {
      throw std::invalid_argument(
          "ParetoArchive::from_entries: non-finite objective");
    }
  }
  ParetoArchive archive;
  archive.entries_ = std::move(entries);
  return archive;
}

double ParetoArchive::hypervolume(const Objective& ref) const {
  if (entries_.empty()) return 0.0;
  // Sort by IPC descending; walk down in power.
  std::vector<Objective> pts = objectives();
  std::sort(pts.begin(), pts.end(), [](const Objective& a, const Objective& b) {
    return a.ipc > b.ipc;
  });
  double hv = 0.0;
  double prev_power = ref.power;
  for (const auto& p : pts) {
    const double ipc = std::max(p.ipc, ref.ipc);
    const double power = std::max(p.power, 0.0);
    if (ipc <= ref.ipc || power >= prev_power) continue;
    hv += (ipc - ref.ipc) * (prev_power - std::max(power, 0.0));
    prev_power = power;
  }
  return hv;
}

std::vector<Objective> ParetoArchive::objectives() const {
  std::vector<Objective> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) out.push_back(e.objective);
  return out;
}

double adrs(const std::vector<Objective>& reference,
            const std::vector<Objective>& approximation) {
  if (reference.empty() || approximation.empty()) {
    throw std::invalid_argument("adrs: empty input set");
  }
  // Normalize by the reference set's objective ranges.
  double ipc_lo = 1e300;
  double ipc_hi = -1e300;
  double pw_lo = 1e300;
  double pw_hi = -1e300;
  for (const auto& r : reference) {
    ipc_lo = std::min(ipc_lo, r.ipc);
    ipc_hi = std::max(ipc_hi, r.ipc);
    pw_lo = std::min(pw_lo, r.power);
    pw_hi = std::max(pw_hi, r.power);
  }
  const double ipc_rng = std::max(1e-9, ipc_hi - ipc_lo);
  const double pw_rng = std::max(1e-9, pw_hi - pw_lo);
  double total = 0.0;
  for (const auto& r : reference) {
    double best = 1e300;
    for (const auto& a : approximation) {
      const double di = (r.ipc - a.ipc) / ipc_rng;
      const double dp = (r.power - a.power) / pw_rng;
      best = std::min(best, std::sqrt(di * di + dp * dp));
    }
    total += best;
  }
  return total / static_cast<double>(reference.size());
}

}  // namespace metadse::explore
