#include "explore/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/io.hpp"
#include "explore/journal.hpp"
#include "explore/run_report.hpp"

namespace metadse::explore {

namespace {

/// Wraps a per-point evaluator as a batch evaluator (trivially pointwise).
BatchEvaluator wrap_scalar(const Evaluator& evaluate) {
  return [&evaluate](const std::vector<arch::Config>& batch) {
    std::vector<Objective> out;
    out.reserve(batch.size());
    for (const auto& c : batch) out.push_back(evaluate(c));
    return out;
  };
}

/// Durability state threaded through a journaled run: the WAL itself, the
/// replay cursor into its recovered prefix, and the generation counter the
/// records are framed with.
struct JournalSession {
  RunJournal journal;
  const JournalOptions& options;
  RunReport* report;
  size_t next = 0;     ///< next recovered record to replay (physical index)
  uint32_t gen = 0;    ///< generation (flush) counter
  size_t it = 0;       ///< mutation iterations completed (for snapshots)
  /// Logical records consumed: replayed + appended, plus everything a
  /// restored snapshot or rotated base already covers. This is what
  /// snapshots claim as records_consumed — stable across compactions.
  uint64_t done = 0;

  JournalSession(const arch::DesignSpace& space, const ExplorerOptions& eopts,
                 const JournalOptions& jopts, RunReport* rep)
      : journal(jopts.path,
                RunJournal::Identity{
                    .seed = eopts.seed,
                    .initial_samples = eopts.initial_samples,
                    .iterations = eopts.iterations,
                    .mutations_per_step = eopts.mutations_per_step,
                    .eval_batch = eopts.eval_batch,
                    .num_params = space.num_params()},
                jopts.resume),
        options(jopts),
        report(rep) {
    if (!journal.records().empty()) report->resumed = true;
  }

  /// Storage-fault accounting survives every exit path (including throws):
  /// the report is finalized when the session unwinds.
  ~JournalSession() {
    report->journal_disk_errors = journal.disk_errors();
    report->journal_buffered = journal.buffered_records();
    report->journal_compactions = journal.compactions();
  }
};

}  // namespace

EvolutionaryExplorer::EvolutionaryExplorer(ExplorerOptions options)
    : options_(options) {
  if (options_.initial_samples == 0) {
    throw std::invalid_argument(
        "ExplorerOptions: initial_samples must be >= 1 (the archive would "
        "start empty and every mutation step would be skipped)");
  }
  if (options_.iterations == 0) {
    throw std::invalid_argument(
        "ExplorerOptions: iterations must be >= 1 (no mutation steps would "
        "run; use random_search for a pure screening pass)");
  }
  if (options_.mutations_per_step == 0) {
    throw std::invalid_argument(
        "ExplorerOptions: mutations_per_step must be >= 1 (children would "
        "duplicate their parents)");
  }
}

ParetoArchive EvolutionaryExplorer::explore(const arch::DesignSpace& space,
                                            const Evaluator& evaluate) const {
  return explore_impl(space, wrap_scalar(evaluate), nullptr, nullptr);
}

ParetoArchive EvolutionaryExplorer::explore(
    const arch::DesignSpace& space, const BatchEvaluator& evaluate) const {
  return explore_impl(space, evaluate, nullptr, nullptr);
}

ParetoArchive EvolutionaryExplorer::explore(const arch::DesignSpace& space,
                                            const BatchEvaluator& evaluate,
                                            const JournalOptions& journal,
                                            RunReport* report) const {
  if (journal.path.empty()) {
    throw std::invalid_argument("JournalOptions: empty journal path");
  }
  if (journal.snapshot_period == 0) {
    throw std::invalid_argument(
        "JournalOptions: snapshot_period must be >= 1");
  }
  return explore_impl(space, evaluate, &journal, report);
}

ParetoArchive EvolutionaryExplorer::explore_impl(
    const arch::DesignSpace& space, const BatchEvaluator& evaluate,
    const JournalOptions* journal_options, RunReport* report) const {
  RunReport scratch;
  RunReport* rep = report ? report : &scratch;
  std::unique_ptr<JournalSession> session;
  if (journal_options) {
    session = std::make_unique<JournalSession>(space, options_,
                                               *journal_options, rep);
  }

  tensor::Rng rng(options_.seed);
  ParetoArchive archive;
  const size_t G = std::max<size_t>(1, options_.eval_batch);
  size_t it = 0;
  bool skip_seeding = false;

  // Snapshot fast path: restore the archive, RNG stream, and journal cursor
  // from the last generation boundary instead of replaying from record 0.
  // Snapshots are only taken after seeding, so a restore always lands in
  // the mutation loop. Any defect in the snapshot just rejects the fast
  // path — the full-replay slow path is always available.
  if (session && session->options.resume) {
    if (const auto snap = session->journal.load_snapshot()) {
      try {
        tensor::Rng restored(options_.seed);
        restored.restore_state(snap->rng_state);
        std::vector<ParetoArchive::Entry> entries;
        entries.reserve(snap->entries.size());
        for (const auto& p : snap->entries) {
          entries.push_back({space.decode(p.config_id), {p.ipc, p.power}});
        }
        archive = ParetoArchive::from_entries(std::move(entries));
        rng = restored;
        it = snap->it;
        session->it = snap->it;
        session->gen = static_cast<uint32_t>(snap->gen);
        // records_consumed is logical; the replay cursor is physical into
        // the current generation's records() (load_snapshot guarantees
        // records_consumed >= base()).
        session->next = static_cast<size_t>(snap->records_consumed -
                                            session->journal.base());
        session->done = snap->records_consumed;
        skip_seeding = true;
        rep->resumed = true;
        rep->snapshot_restored = true;
      } catch (const std::exception&) {
        // Unparsable state / undecodable config despite a valid CRC: treat
        // the snapshot as absent and replay the journal from the start.
        archive = ParetoArchive{};
      }
    }
  }
  // A rotated journal (base > 0) whose snapshot did not restore has nothing
  // to replay its compacted prefix against: restart the log from scratch
  // and re-evaluate. Correctness is untouched (the deterministic stream
  // converges to the same archive); only the replay fast path is lost.
  if (session && !skip_seeding && session->journal.base() > 0) {
    session->journal.reset_fresh();
    rep->journal_reset = true;
  }

  // Evaluates @p pending as one generation: replayable points come from the
  // journal (verified against the redrawn candidate), the rest go through
  // the evaluator and are appended to the journal before insertion.
  std::vector<arch::Config> pending;
  pending.reserve(G);
  auto flush = [&](std::vector<arch::Config>& batch) {
    if (batch.empty()) return;
    size_t i = 0;
    if (session) {
      const uint64_t cursor = rng.cursor();
      const uint32_t gen = session->gen;
      while (i < batch.size() &&
             session->next < session->journal.records().size()) {
        const JournalRecord& r = session->journal.records()[session->next];
        if (r.gen != gen || r.cursor != cursor ||
            r.config_id != space.encode(batch[i])) {
          // The journal diverged from the deterministic candidate stream
          // (foreign tail after a config change, or semantic corruption a
          // frame CRC cannot see). Drop it and evaluate live from here.
          session->journal.truncate_to(session->next);
          break;
        }
        archive.insert(std::move(batch[i]), {r.ipc, r.power});
        ++session->next;
        ++session->done;
        ++rep->replayed;
        ++i;
      }
    }
    if (i < batch.size()) {
      std::vector<arch::Config> tail(
          std::make_move_iterator(batch.begin() + i),
          std::make_move_iterator(batch.end()));
      std::vector<Objective> objs = evaluate(tail);
      if (objs.size() != tail.size()) {
        throw std::runtime_error(
            "explore: batch evaluator returned " +
            std::to_string(objs.size()) + " objectives for " +
            std::to_string(tail.size()) + " configs");
      }
      for (size_t j = 0; j < tail.size(); ++j) {
        if (session) {
          const bool finite = std::isfinite(objs[j].ipc) &&
                              std::isfinite(objs[j].power);
          session->journal.append(
              {.gen = session->gen,
               .flags = finite ? 0U : JournalRecord::kSkipped,
               .config_id = space.encode(tail[j]),
               .ipc = objs[j].ipc,
               .power = objs[j].power,
               .cursor = rng.cursor()});
          ++session->done;
          ++rep->journal_records;
        }
        archive.insert(std::move(tail[j]), objs[j]);
      }
    }
    batch.clear();
    if (session) ++session->gen;
  };

  // Writes an atomic archive snapshot at the current generation boundary.
  // A failing snapshot write (disk fault, injected ENOSPC) is contained: it
  // only costs the resume fast path, never the run. A successful snapshot
  // that covers every durable record can then rotate the journal — the
  // snapshot carries the archive, so the log it covers is redundant.
  auto snapshot_now = [&] {
    RunJournal::Snapshot snap;
    snap.records_consumed = session->done;
    snap.it = session->it;
    snap.gen = session->gen;
    snap.rng_state = rng.save_state();
    snap.entries.reserve(archive.size());
    for (const auto& e : archive.entries()) {
      snap.entries.push_back(
          {space.encode(e.config), e.objective.ipc, e.objective.power});
    }
    try {
      session->journal.write_snapshot(snap);
    } catch (const core::io::IoError&) {
      ++rep->snapshot_failures;
      return;
    }
    ++rep->snapshots;
    RunJournal& j = session->journal;
    if (session->options.compact_after_records > 0 &&
        session->done == j.logical_end() &&
        j.logical_end() - j.base() >= session->options.compact_after_records) {
      if (j.compact(session->done)) session->next = 0;
    }
  };
  auto maybe_snapshot = [&] {
    if (!session || session->gen % session->options.snapshot_period != 0) {
      return;
    }
    snapshot_now();
  };

  // Cooperative stop, polled at generation boundaries only: everything
  // evaluated so far is already durable (flush appends before insertion),
  // and a final snapshot makes the resume fast-forward instead of replay.
  // Snapshots are legal only after seeding (the restore path assumes it
  // lands in the mutation loop), so a mid-seeding stop syncs the journal
  // and leaves resume to the full-replay path.
  auto check_stop = [&](bool can_snapshot) {
    if (!options_.stop_check || !options_.stop_check()) return;
    if (session) {
      if (can_snapshot) snapshot_now();
      session->journal.sync();
    }
    throw StopRequested(
        "exploration stopped cooperatively at a generation boundary" +
        std::string(session ? "; journal and snapshot flushed, resume to "
                              "finish the run"
                            : " (unjournaled: progress lost)"));
  };

  if (!skip_seeding) {
    // LHS seeding: sampling happens before any evaluation, so chunking the
    // evaluator calls leaves the rng stream and insertion order unchanged.
    for (auto& c :
         space.sample_latin_hypercube(options_.initial_samples, rng)) {
      pending.push_back(std::move(c));
      if (pending.size() >= G) {
        flush(pending);
        check_stop(/*can_snapshot=*/false);
      }
    }
    flush(pending);
    check_stop(/*can_snapshot=*/false);
  }

  // Generational mutation: each generation samples up to G children from the
  // archive as of the generation start (consuming the rng per child exactly
  // as the sequential schedule does), evaluates them as one batch, and
  // inserts in order. G = 1 is the original fully-sequential loop.
  while (it < options_.iterations) {
    if (archive.empty()) break;
    const size_t gen = std::min<size_t>(G, options_.iterations - it);
    for (size_t g = 0; g < gen; ++g) {
      const auto& parent =
          archive.entries()[rng.uniform_index(archive.size())].config;
      arch::Config child = parent;
      for (size_t m = 0; m < options_.mutations_per_step; ++m) {
        const size_t p = rng.uniform_index(space.num_params());
        const size_t card = space.spec(p).cardinality();
        if (card == 1) continue;
        // ±1 or ±2 candidate steps (clamped), occasionally a random jump.
        if (rng.uniform() < 0.15) {
          child[p] = rng.uniform_index(card);
        } else {
          const int step = rng.uniform() < 0.5 ? -1 : 1;
          const int mag = rng.uniform() < 0.3 ? 2 : 1;
          const long idx = static_cast<long>(child[p]) + step * mag;
          child[p] = static_cast<size_t>(
              std::clamp<long>(idx, 0, static_cast<long>(card) - 1));
        }
      }
      pending.push_back(std::move(child));
    }
    flush(pending);
    it += gen;
    if (session) session->it = it;
    maybe_snapshot();
    check_stop(/*can_snapshot=*/true);
  }
  if (session) session->journal.sync();
  return archive;
}

ParetoArchive random_search(const arch::DesignSpace& space,
                            const Evaluator& evaluate, size_t budget,
                            tensor::Rng& rng) {
  return random_search(space, wrap_scalar(evaluate), budget, rng, 1);
}

ParetoArchive random_search(const arch::DesignSpace& space,
                            const BatchEvaluator& evaluate, size_t budget,
                            tensor::Rng& rng, size_t eval_batch) {
  if (budget == 0) throw std::invalid_argument("random_search: zero budget");
  const size_t G = std::max<size_t>(1, eval_batch);
  ParetoArchive archive;
  std::vector<arch::Config> pending;
  pending.reserve(G);
  auto flush = [&] {
    if (pending.empty()) return;
    std::vector<Objective> objs = evaluate(pending);
    if (objs.size() != pending.size()) {
      throw std::runtime_error(
          "explore: batch evaluator returned " + std::to_string(objs.size()) +
          " objectives for " + std::to_string(pending.size()) + " configs");
    }
    for (size_t i = 0; i < pending.size(); ++i) {
      archive.insert(std::move(pending[i]), objs[i]);
    }
    pending.clear();
  };
  for (size_t i = 0; i < budget; ++i) {
    pending.push_back(space.random_config(rng));
    if (pending.size() >= G) flush();
  }
  flush();
  return archive;
}

}  // namespace metadse::explore
