#include "explore/explorer.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace metadse::explore {

namespace {

/// Wraps a per-point evaluator as a batch evaluator (trivially pointwise).
BatchEvaluator wrap_scalar(const Evaluator& evaluate) {
  return [&evaluate](const std::vector<arch::Config>& batch) {
    std::vector<Objective> out;
    out.reserve(batch.size());
    for (const auto& c : batch) out.push_back(evaluate(c));
    return out;
  };
}

/// Evaluates @p pending as one batch and inserts results in order.
void flush_batch(ParetoArchive& archive, std::vector<arch::Config>& pending,
                 const BatchEvaluator& evaluate) {
  if (pending.empty()) return;
  std::vector<Objective> objs = evaluate(pending);
  if (objs.size() != pending.size()) {
    throw std::runtime_error(
        "explore: batch evaluator returned " + std::to_string(objs.size()) +
        " objectives for " + std::to_string(pending.size()) + " configs");
  }
  for (size_t i = 0; i < pending.size(); ++i) {
    archive.insert(std::move(pending[i]), objs[i]);
  }
  pending.clear();
}

}  // namespace

EvolutionaryExplorer::EvolutionaryExplorer(ExplorerOptions options)
    : options_(options) {
  if (options_.initial_samples == 0 || options_.mutations_per_step == 0) {
    throw std::invalid_argument("ExplorerOptions: zero-sized knob");
  }
}

ParetoArchive EvolutionaryExplorer::explore(const arch::DesignSpace& space,
                                            const Evaluator& evaluate) const {
  return explore(space, wrap_scalar(evaluate));
}

ParetoArchive EvolutionaryExplorer::explore(
    const arch::DesignSpace& space, const BatchEvaluator& evaluate) const {
  tensor::Rng rng(options_.seed);
  ParetoArchive archive;
  const size_t G = std::max<size_t>(1, options_.eval_batch);

  // LHS seeding: sampling happens before any evaluation, so chunking the
  // evaluator calls leaves the rng stream and insertion order unchanged.
  std::vector<arch::Config> pending;
  pending.reserve(G);
  for (auto& c : space.sample_latin_hypercube(options_.initial_samples, rng)) {
    pending.push_back(std::move(c));
    if (pending.size() >= G) flush_batch(archive, pending, evaluate);
  }
  flush_batch(archive, pending, evaluate);

  // Generational mutation: each generation samples up to G children from the
  // archive as of the generation start (consuming the rng per child exactly
  // as the sequential schedule does), evaluates them as one batch, and
  // inserts in order. G = 1 is the original fully-sequential loop.
  size_t it = 0;
  while (it < options_.iterations) {
    if (archive.empty()) break;
    const size_t gen = std::min<size_t>(G, options_.iterations - it);
    for (size_t g = 0; g < gen; ++g) {
      const auto& parent =
          archive.entries()[rng.uniform_index(archive.size())].config;
      arch::Config child = parent;
      for (size_t m = 0; m < options_.mutations_per_step; ++m) {
        const size_t p = rng.uniform_index(space.num_params());
        const size_t card = space.spec(p).cardinality();
        if (card == 1) continue;
        // ±1 or ±2 candidate steps (clamped), occasionally a random jump.
        if (rng.uniform() < 0.15) {
          child[p] = rng.uniform_index(card);
        } else {
          const int step = rng.uniform() < 0.5 ? -1 : 1;
          const int mag = rng.uniform() < 0.3 ? 2 : 1;
          const long idx = static_cast<long>(child[p]) + step * mag;
          child[p] = static_cast<size_t>(
              std::clamp<long>(idx, 0, static_cast<long>(card) - 1));
        }
      }
      pending.push_back(std::move(child));
    }
    flush_batch(archive, pending, evaluate);
    it += gen;
  }
  return archive;
}

ParetoArchive random_search(const arch::DesignSpace& space,
                            const Evaluator& evaluate, size_t budget,
                            tensor::Rng& rng) {
  return random_search(space, wrap_scalar(evaluate), budget, rng, 1);
}

ParetoArchive random_search(const arch::DesignSpace& space,
                            const BatchEvaluator& evaluate, size_t budget,
                            tensor::Rng& rng, size_t eval_batch) {
  if (budget == 0) throw std::invalid_argument("random_search: zero budget");
  const size_t G = std::max<size_t>(1, eval_batch);
  ParetoArchive archive;
  std::vector<arch::Config> pending;
  pending.reserve(G);
  for (size_t i = 0; i < budget; ++i) {
    pending.push_back(space.random_config(rng));
    if (pending.size() >= G) flush_batch(archive, pending, evaluate);
  }
  flush_batch(archive, pending, evaluate);
  return archive;
}

}  // namespace metadse::explore
