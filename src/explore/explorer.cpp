#include "explore/explorer.hpp"

#include <stdexcept>

namespace metadse::explore {

EvolutionaryExplorer::EvolutionaryExplorer(ExplorerOptions options)
    : options_(options) {
  if (options_.initial_samples == 0 || options_.mutations_per_step == 0) {
    throw std::invalid_argument("ExplorerOptions: zero-sized knob");
  }
}

ParetoArchive EvolutionaryExplorer::explore(const arch::DesignSpace& space,
                                            const Evaluator& evaluate) const {
  tensor::Rng rng(options_.seed);
  ParetoArchive archive;

  for (auto& c : space.sample_latin_hypercube(options_.initial_samples, rng)) {
    Objective o = evaluate(c);
    archive.insert(std::move(c), o);
  }

  for (size_t it = 0; it < options_.iterations; ++it) {
    if (archive.empty()) break;
    // Mutate a random archive member.
    const auto& parent =
        archive.entries()[rng.uniform_index(archive.size())].config;
    arch::Config child = parent;
    for (size_t m = 0; m < options_.mutations_per_step; ++m) {
      const size_t p = rng.uniform_index(space.num_params());
      const size_t card = space.spec(p).cardinality();
      if (card == 1) continue;
      // ±1 or ±2 candidate steps (clamped), occasionally a random jump.
      if (rng.uniform() < 0.15) {
        child[p] = rng.uniform_index(card);
      } else {
        const int step = rng.uniform() < 0.5 ? -1 : 1;
        const int mag = rng.uniform() < 0.3 ? 2 : 1;
        const long idx = static_cast<long>(child[p]) + step * mag;
        child[p] = static_cast<size_t>(
            std::clamp<long>(idx, 0, static_cast<long>(card) - 1));
      }
    }
    Objective o = evaluate(child);
    archive.insert(std::move(child), o);
  }
  return archive;
}

ParetoArchive random_search(const arch::DesignSpace& space,
                            const Evaluator& evaluate, size_t budget,
                            tensor::Rng& rng) {
  if (budget == 0) throw std::invalid_argument("random_search: zero budget");
  ParetoArchive archive;
  for (size_t i = 0; i < budget; ++i) {
    auto c = space.random_config(rng);
    Objective o = evaluate(c);
    archive.insert(std::move(c), o);
  }
  return archive;
}

}  // namespace metadse::explore
