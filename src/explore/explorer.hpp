// Design-space explorers: a random-screening baseline and an evolutionary
// (archive-driven mutation) multi-objective explorer, both driven by an
// arbitrary objective evaluator — either the simulator (oracle) or an
// adapted MetaDSE predictor (the few-shot DSE loop the paper motivates).
#pragma once

#include <functional>

#include "explore/pareto.hpp"
#include "tensor/rng.hpp"

namespace metadse::explore {

/// Evaluates one configuration's objectives.
using Evaluator = std::function<Objective(const arch::Config&)>;

/// Evaluates a batch of configurations in one call. Must return exactly one
/// Objective per input config, in order, and each element must equal what the
/// scalar evaluator would return for that config alone (surrogate-backed
/// implementations get this from the batched-forward bitwise guarantee).
using BatchEvaluator =
    std::function<std::vector<Objective>(const std::vector<arch::Config>&)>;

/// Budget/strategy knobs for the evolutionary explorer.
struct ExplorerOptions {
  size_t initial_samples = 128;  ///< LHS seeding of the archive
  size_t iterations = 512;       ///< mutation/evaluation steps after seeding
  size_t mutations_per_step = 2; ///< parameters perturbed per mutation
  uint64_t seed = 71;
  /// Candidates evaluated per BatchEvaluator call (a "generation"): children
  /// are sampled from the archive as of the generation start, evaluated as
  /// one batch, and inserted in order. 1 reproduces the fully-sequential
  /// schedule exactly.
  size_t eval_batch = 1;
};

/// Evolutionary Pareto search: seed with Latin-hypercube samples, then
/// repeatedly mutate archive members (±1..2 candidate steps on a few
/// parameters) and keep non-dominated results.
class EvolutionaryExplorer {
 public:
  explicit EvolutionaryExplorer(ExplorerOptions options = {});

  /// Runs the search; @p evaluate is called once per examined point
  /// (delegates to the batched overload with a per-point wrapper).
  ParetoArchive explore(const arch::DesignSpace& space,
                        const Evaluator& evaluate) const;

  /// Batched search: candidates are pushed through @p evaluate in chunks of
  /// options.eval_batch. For a batch evaluator matching its scalar
  /// counterpart pointwise, the result is identical to the scalar overload
  /// with the same options.
  ParetoArchive explore(const arch::DesignSpace& space,
                        const BatchEvaluator& evaluate) const;

  /// Number of candidate evaluations an explore() run makes.
  size_t budget() const {
    return options_.initial_samples + options_.iterations;
  }

 private:
  ExplorerOptions options_;
};

/// Baseline: evaluate @p budget uniform random points and keep the Pareto
/// set (what a designer does without a surrogate).
ParetoArchive random_search(const arch::DesignSpace& space,
                            const Evaluator& evaluate, size_t budget,
                            tensor::Rng& rng);

/// Batched random search. Configs are drawn exactly as in the scalar form
/// (rng consumption is independent of evaluation), evaluated in chunks of
/// @p eval_batch, and inserted in draw order — same archive as the scalar
/// form for a pointwise-equal batch evaluator.
ParetoArchive random_search(const arch::DesignSpace& space,
                            const BatchEvaluator& evaluate, size_t budget,
                            tensor::Rng& rng, size_t eval_batch);

}  // namespace metadse::explore
