// Design-space explorers: a random-screening baseline and an evolutionary
// (archive-driven mutation) multi-objective explorer, both driven by an
// arbitrary objective evaluator — either the simulator (oracle) or an
// adapted MetaDSE predictor (the few-shot DSE loop the paper motivates).
#pragma once

#include <functional>
#include <stdexcept>
#include <string>

#include "explore/pareto.hpp"
#include "tensor/rng.hpp"

namespace metadse::explore {

/// A cooperative stop (SIGTERM handler, server shutdown) interrupted the
/// run at a generation boundary. For a journaled run the journal is synced
/// and a snapshot is written *before* this is thrown, so resuming finishes
/// the run bitwise-identically; an unjournaled run simply loses its
/// progress, exactly like a crash.
class StopRequested : public std::runtime_error {
 public:
  explicit StopRequested(const std::string& what)
      : std::runtime_error(what) {}
};

/// Evaluates one configuration's objectives.
using Evaluator = std::function<Objective(const arch::Config&)>;

/// Evaluates a batch of configurations in one call. Must return exactly one
/// Objective per input config, in order, and each element must equal what the
/// scalar evaluator would return for that config alone (surrogate-backed
/// implementations get this from the batched-forward bitwise guarantee).
using BatchEvaluator =
    std::function<std::vector<Objective>(const std::vector<arch::Config>&)>;

/// Budget/strategy knobs for the evolutionary explorer. All three budget
/// knobs must be >= 1 (the constructor validates each with a precise error
/// rather than silently exploring an empty archive).
struct ExplorerOptions {
  size_t initial_samples = 128;  ///< LHS seeding of the archive
  size_t iterations = 512;       ///< mutation/evaluation steps after seeding
  size_t mutations_per_step = 2; ///< parameters perturbed per mutation
  uint64_t seed = 71;
  /// Candidates evaluated per BatchEvaluator call (a "generation"): children
  /// are sampled from the archive as of the generation start, evaluated as
  /// one batch, and inserted in order. 1 reproduces the fully-sequential
  /// schedule exactly.
  size_t eval_batch = 1;
  /// Cooperative stop probe, polled once per generation. When it returns
  /// true the run flushes its journal + snapshot (if journaled) and throws
  /// StopRequested. Not part of the journal identity — a resumed run may
  /// install a different probe.
  std::function<bool()> stop_check = {};
};

/// Durability knobs for a journaled explore() run (see explore/journal.hpp
/// for the on-disk contract).
struct JournalOptions {
  /// Write-ahead log path; the archive snapshot lives at "<path>.snapshot".
  std::string path;
  /// Replay an existing journal/snapshot when present. When false, a
  /// journal that already holds records is an error, never clobbered.
  bool resume = true;
  /// Generations (evaluator flushes) between archive snapshots (>= 1).
  size_t snapshot_period = 8;
  /// Journal rotation: once a snapshot covers at least this many durable
  /// records, the journal is compacted to an empty generation based at the
  /// snapshot (bounded disk for long-lived runs; crash-safe handoff).
  /// 0 disables rotation.
  size_t compact_after_records = 0;
};

struct RunReport;

/// Evolutionary Pareto search: seed with Latin-hypercube samples, then
/// repeatedly mutate archive members (±1..2 candidate steps on a few
/// parameters) and keep non-dominated results.
class EvolutionaryExplorer {
 public:
  explicit EvolutionaryExplorer(ExplorerOptions options = {});

  /// Runs the search; @p evaluate is called once per examined point
  /// (delegates to the batched overload with a per-point wrapper).
  ParetoArchive explore(const arch::DesignSpace& space,
                        const Evaluator& evaluate) const;

  /// Batched search: candidates are pushed through @p evaluate in chunks of
  /// options.eval_batch. For a batch evaluator matching its scalar
  /// counterpart pointwise, the result is identical to the scalar overload
  /// with the same options.
  ParetoArchive explore(const arch::DesignSpace& space,
                        const BatchEvaluator& evaluate) const;

  /// Journaled search: every evaluated point is appended to a CRC-framed
  /// write-ahead log before the run moves on, and the Pareto archive is
  /// snapshotted atomically every journal.snapshot_period generations.
  /// Candidates are drawn in deterministic generation order, so resuming an
  /// interrupted run (journal.resume) replays the journal — snapshot
  /// fast-forward first, then record-by-record, verified against the
  /// redrawn candidate stream — and produces a final archive
  /// bitwise-identical to an uninterrupted run with the same seed.
  /// @p report, when non-null, receives the durability accounting (and the
  /// guard accounting, if @p evaluate wraps a GuardedEvaluator sharing it).
  ParetoArchive explore(const arch::DesignSpace& space,
                        const BatchEvaluator& evaluate,
                        const JournalOptions& journal,
                        RunReport* report = nullptr) const;

  /// Number of candidate evaluations an explore() run makes.
  size_t budget() const {
    return options_.initial_samples + options_.iterations;
  }

 private:
  ParetoArchive explore_impl(const arch::DesignSpace& space,
                             const BatchEvaluator& evaluate,
                             const JournalOptions* journal,
                             RunReport* report) const;

  ExplorerOptions options_;
};

/// Baseline: evaluate @p budget uniform random points and keep the Pareto
/// set (what a designer does without a surrogate).
ParetoArchive random_search(const arch::DesignSpace& space,
                            const Evaluator& evaluate, size_t budget,
                            tensor::Rng& rng);

/// Batched random search. Configs are drawn exactly as in the scalar form
/// (rng consumption is independent of evaluation), evaluated in chunks of
/// @p eval_batch, and inserted in draw order — same archive as the scalar
/// form for a pointwise-equal batch evaluator.
ParetoArchive random_search(const arch::DesignSpace& space,
                            const BatchEvaluator& evaluate, size_t budget,
                            tensor::Rng& rng, size_t eval_batch);

}  // namespace metadse::explore
