// Design-space explorers: a random-screening baseline and an evolutionary
// (archive-driven mutation) multi-objective explorer, both driven by an
// arbitrary objective evaluator — either the simulator (oracle) or an
// adapted MetaDSE predictor (the few-shot DSE loop the paper motivates).
#pragma once

#include <functional>

#include "explore/pareto.hpp"
#include "tensor/rng.hpp"

namespace metadse::explore {

/// Evaluates one configuration's objectives.
using Evaluator = std::function<Objective(const arch::Config&)>;

/// Budget/strategy knobs for the evolutionary explorer.
struct ExplorerOptions {
  size_t initial_samples = 128;  ///< LHS seeding of the archive
  size_t iterations = 512;       ///< mutation/evaluation steps after seeding
  size_t mutations_per_step = 2; ///< parameters perturbed per mutation
  uint64_t seed = 71;
};

/// Evolutionary Pareto search: seed with Latin-hypercube samples, then
/// repeatedly mutate archive members (±1..2 candidate steps on a few
/// parameters) and keep non-dominated results.
class EvolutionaryExplorer {
 public:
  explicit EvolutionaryExplorer(ExplorerOptions options = {});

  /// Runs the search; @p evaluate is called once per examined point.
  ParetoArchive explore(const arch::DesignSpace& space,
                        const Evaluator& evaluate) const;

  /// Number of evaluator calls an explore() run makes.
  size_t budget() const {
    return options_.initial_samples + options_.iterations;
  }

 private:
  ExplorerOptions options_;
};

/// Baseline: evaluate @p budget uniform random points and keep the Pareto
/// set (what a designer does without a surrogate).
ParetoArchive random_search(const arch::DesignSpace& space,
                            const Evaluator& evaluate, size_t budget,
                            tensor::Rng& rng);

}  // namespace metadse::explore
