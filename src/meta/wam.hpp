// Workload-adaptive Architectural Mask (paper §IV-C, Fig. 4 and Algorithm 2).
// The mask is distilled from the last-layer attention maps observed during
// pre-training: parameter interactions that occur with high frequency across
// diverse workloads are kept; low-frequency (noise) interactions are
// suppressed. During adaptation the mask is installed in the predictor's
// last self-attention operator and optionally trained together with the
// model parameters.
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "nn/transformer.hpp"

namespace metadse::meta {

/// Mask shape: hard binary keep/suppress, or a continuous profile derived
/// from the attention statistics (suppression proportional to how rarely an
/// interaction occurs).
enum class WamMode { kBinary, kContinuous };

/// Mask construction knobs.
struct WamOptions {
  /// Fraction of off-diagonal interactions kept at full strength (binary
  /// mode), or the sharpening exponent's pivot (continuous mode).
  double keep_fraction = 0.35;
  /// Multiplier applied to filtered (low-frequency) interactions; also the
  /// floor of the continuous profile.
  float suppressed_value = 0.7F;
  WamMode mode = WamMode::kContinuous;
};

/// Accumulates attention maps ("mask candidates") and produces the WAM.
class WamGenerator {
 public:
  explicit WamGenerator(size_t n_tokens);

  /// Adds one [n_tokens, n_tokens] attention map observation. Within the
  /// map, entries exceeding their row's mean are counted as an occurring
  /// interaction (a "hit").
  void accumulate(const tensor::Tensor& attention);

  /// Number of maps accumulated.
  size_t count() const { return count_; }

  /// Builds the mask: interactions whose hit frequency is in the top
  /// keep_fraction get weight 1, the rest suppressed_value; the diagonal
  /// (a parameter attending to itself) is always kept.
  tensor::Tensor generate(const WamOptions& options = {}) const;

  /// Convenience: build a WAM from a single mean-attention map (hit counts
  /// replaced by the mean weights themselves).
  static tensor::Tensor from_mean_attention(const tensor::Tensor& mean_attn,
                                            const WamOptions& options = {});

 private:
  size_t n_;
  std::vector<double> hits_;
  size_t count_ = 0;
};

/// Adaptation hyper-parameters (Algorithm 2; §VI-A: ten gradient steps with
/// cosine annealing).
struct AdaptOptions {
  size_t steps = 10;
  float lr = 1e-2F;          ///< gamma (for standardized labels)
  bool use_wam = true;       ///< install the mask (false = plain fine-tuning)
  bool learn_mask = true;    ///< M.required_grad = True (Algorithm 2 line 2)
  float mask_lr_scale = 4.0F;  ///< mask learns faster than the backbone
  /// Install the WAM in every encoder layer instead of only the last
  /// self-attention operator (stronger regularization; the repo ablation
  /// found this the best-performing placement).
  bool mask_all_layers = true;
};

/// Runs Algorithm 2: clones the meta-trained predictor, equips it with the
/// WAM, and fine-tunes on the (already standardized) support set.
/// @p mask may be undefined when options.use_wam is false.
std::unique_ptr<nn::TransformerRegressor> wam_adapt(
    const nn::TransformerRegressor& pretrained, const tensor::Tensor& mask,
    const tensor::Tensor& support_x, const tensor::Tensor& support_y,
    const AdaptOptions& options);

}  // namespace metadse::meta
