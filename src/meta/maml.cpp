#include "meta/maml.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/parallel.hpp"
#include "nn/plan.hpp"
#include "tensor/guard.hpp"
#include "tensor/ops.hpp"
#include "tensor/pool.hpp"

namespace metadse::meta {

namespace t = metadse::tensor;

/// Everything one meta-batch task produces on a worker thread. The fields
/// are combined into the trainer state on the calling thread in task order,
/// so the reduction is bitwise identical to the serial loop.
struct MamlTrainer::TaskOutcome {
  bool skipped = false;  ///< dropped by a numerical guard (no gradient)
  /// Adapted-model attention map to accumulate (empty when the inner loop
  /// diverged or the map was non-finite). Independent of `skipped`: the
  /// serial loop accumulates attention before the query-loss guards.
  std::vector<float> attention;
  /// FOMAML/ANIL: query gradients per parameter, aligned with parameters().
  std::vector<std::vector<float>> grads;
  /// Reptile: flat (adapted - init) parameter delta.
  std::vector<float> reptile_delta;
  double query_loss = 0.0;
};

MamlTrainer::MamlTrainer(nn::TransformerConfig predictor, MamlOptions options)
    : cfg_(predictor), options_(options) {
  if (options_.support == 0 || options_.query == 0 ||
      options_.inner_steps == 0 || options_.meta_batch == 0) {
    throw std::invalid_argument("MamlOptions: zero-sized training knob");
  }
  cfg_.n_outputs = data::target_width(options_.target);
  tensor::Rng rng(options_.seed);
  model_ = std::make_unique<nn::TransformerRegressor>(cfg_, rng);
}

void MamlTrainer::set_warm_start(WarmStart ws) {
  warm_start_ = std::make_unique<WarmStart>(std::move(ws));
}

void MamlTrainer::train(const std::vector<data::Dataset>& train_sets,
                        const std::vector<data::Dataset>& val_sets) {
  if (train_sets.empty()) {
    throw std::invalid_argument("MamlTrainer::train: no source datasets");
  }
  scaler_ = data::Scaler();
  scaler_.fit(train_sets, options_.target);
  attention_sum_.assign(cfg_.n_tokens * cfg_.n_tokens, 0.0);
  attention_count_ = 0;
  trace_.clear();
  best_val_ = 1e300;
  size_t first_epoch = 0;

  if (warm_start_) {
    model_->unflatten_parameters(warm_start_->parameters);
    trace_ = std::move(warm_start_->trace);
    if (!warm_start_->attention_sum.empty()) {
      if (warm_start_->attention_sum.size() != attention_sum_.size()) {
        throw std::invalid_argument(
            "MamlTrainer: warm-start attention size mismatch");
      }
      attention_sum_ = std::move(warm_start_->attention_sum);
      attention_count_ = warm_start_->attention_count;
    }
    best_val_ = warm_start_->best_val;
    best_model_ = model_->clone();
    first_epoch = trace_.size();
    warm_start_.reset();
  }

  float outer_lr = options_.outer_lr;
  outer_opt_ = std::make_unique<nn::Adam>(model_->parameters(), outer_lr);
  // The stream seed folds in the starting epoch so a resumed run draws
  // fresh tasks instead of replaying epoch 0's.
  tensor::Rng rng(options_.seed + 1 + first_epoch);
  double best_train = std::numeric_limits<double>::infinity();
  size_t consecutive_bad = 0;
  for (size_t epoch = first_epoch; epoch < options_.epochs; ++epoch) {
    EpochTrace tr;
    tr.train_meta_loss = run_epoch(train_sets, rng, tr);
    tr.val_loss = val_sets.empty() ? tr.train_meta_loss
                                   : meta_validate(val_sets, rng);

    // Divergence monitor: a non-finite or spiking meta-loss is a bad epoch;
    // after max_bad_epochs in a row, roll back to the best snapshot with a
    // reduced outer LR (fresh Adam state — stale moments from the diverged
    // trajectory would reinfect the restored parameters).
    const bool bad =
        !std::isfinite(tr.train_meta_loss) || !std::isfinite(tr.val_loss) ||
        (std::isfinite(best_train) &&
         tr.train_meta_loss >
             static_cast<double>(options_.divergence_factor) * best_train);
    if (!bad) {
      consecutive_bad = 0;
      best_train = std::min(best_train, tr.train_meta_loss);
      if (tr.val_loss <= best_val_) {
        best_val_ = tr.val_loss;
        best_model_ = model_->clone();
      }
    } else if (options_.max_bad_epochs > 0 &&
               ++consecutive_bad >= options_.max_bad_epochs && best_model_) {
      model_->copy_parameters_from(*best_model_);
      outer_lr *= options_.rollback_lr_decay;
      outer_opt_ = std::make_unique<nn::Adam>(model_->parameters(), outer_lr);
      consecutive_bad = 0;
      tr.rolled_back = true;
      if (options_.verbose) {
        std::fprintf(stderr,
                     "[maml] epoch %zu diverged; rolled back to best "
                     "snapshot, outer LR -> %.2e\n",
                     epoch + 1, static_cast<double>(outer_lr));
      }
    }
    tr.outer_lr = outer_lr;
    trace_.push_back(tr);
    if (options_.verbose) {
      std::fprintf(stderr,
                   "[maml] epoch %zu/%zu meta-loss %.4f val-loss %.4f"
                   " (skipped %zu tasks, %zu batches)\n",
                   epoch + 1, options_.epochs, tr.train_meta_loss,
                   tr.val_loss, tr.skipped_tasks, tr.skipped_batches);
    }
    if (epoch_callback_) epoch_callback_(epoch, tr);
  }
  if (best_model_) model_->copy_parameters_from(*best_model_);
}

double MamlTrainer::run_epoch(const std::vector<data::Dataset>& train_sets,
                              tensor::Rng& rng, EpochTrace& tr) {
  // Pre-build task samplers (one per workload).
  std::vector<data::TaskSampler> samplers;
  samplers.reserve(train_sets.size());
  for (const auto& ds : train_sets) {
    samplers.emplace_back(ds, options_.support, options_.query,
                          options_.target);
  }
  const size_t total_tasks =
      options_.tasks_per_workload * train_sets.size();
  auto params = model_->parameters();

  double loss_sum = 0.0;
  size_t tasks_done = 0;
  size_t tasks_contributed = 0;
  // Meta-gradient accumulator, aligned with the parameter list. Allocated
  // once per epoch and re-zeroed per meta-batch (assign keeps capacity), so
  // the while-loop below performs no accumulator allocations.
  std::vector<std::vector<float>> meta_grad(params.size());
  std::vector<float> reptile_delta;  // flat, for Reptile
  std::vector<data::Task> tasks;
  tasks.reserve(options_.meta_batch);
  while (tasks_done < total_tasks) {
    const size_t batch =
        std::min(options_.meta_batch, total_tasks - tasks_done);
    if (options_.algorithm != MetaAlgorithm::kReptile) {
      for (size_t i = 0; i < params.size(); ++i) {
        meta_grad[i].assign(params[i].size(), 0.0F);
      }
    } else {
      reptile_delta.assign(model_->parameter_count(), 0.0F);
    }

    // Sample the whole meta-batch up front (T_i ~ P(T)): the RNG draw order
    // is identical to the serial loop's, and the per-task computation below
    // never touches the shared stream.
    tasks.clear();
    for (size_t b = 0; b < batch; ++b) {
      const size_t w = rng.uniform_index(samplers.size());
      tasks.push_back(samplers[w].sample(rng));
      ++tasks_done;
    }

    // Inner-adapt every task on the pool, then fold the outcomes into the
    // accumulators in task order (bitwise equal to the serial loop).
    size_t contributed = 0;  // tasks whose gradients survived the guards
    core::parallel_map_reduce<TaskOutcome>(
        batch,
        [&](size_t b) { return run_task(tasks[b]); },
        [&](size_t, TaskOutcome outcome) {
          if (!outcome.attention.empty()) {
            for (size_t i = 0; i < outcome.attention.size(); ++i) {
              attention_sum_[i] += outcome.attention[i];
            }
            ++attention_count_;
          }
          if (outcome.skipped) {
            ++tr.skipped_tasks;
            return;
          }
          if (options_.algorithm != MetaAlgorithm::kReptile) {
            for (size_t i = 0; i < meta_grad.size(); ++i) {
              auto& g = outcome.grads[i];
              for (size_t j = 0; j < g.size(); ++j) meta_grad[i][j] += g[j];
              t::BufferPool::release(std::move(g));
            }
          } else {
            for (size_t i = 0; i < reptile_delta.size(); ++i) {
              reptile_delta[i] += outcome.reptile_delta[i];
            }
          }
          loss_sum += outcome.query_loss;
          ++tasks_contributed;
          ++contributed;
        });

    if (contributed == 0) {
      ++tr.skipped_batches;  // nothing usable: leave theta untouched
      continue;
    }

    // Outer update from the averaged surviving task gradients. The fused
    // clip_and_step is bitwise identical to clip_global_grad_norm followed
    // by step() (the optimizer holds the same tensors in the same order).
    if (options_.algorithm != MetaAlgorithm::kReptile) {
      const float inv = 1.0F / static_cast<float>(contributed);
      for (size_t i = 0; i < params.size(); ++i) {
        auto& g = params[i].grad();
        for (size_t j = 0; j < g.size(); ++j) g[j] = meta_grad[i][j] * inv;
      }
      outer_opt_->clip_and_step(options_.clip_norm);
      outer_opt_->zero_grad();
    } else {
      auto flat = model_->flatten_parameters();
      const float step =
          options_.reptile_step / static_cast<float>(contributed);
      for (size_t i = 0; i < flat.size(); ++i) {
        flat[i] += step * reptile_delta[i];
      }
      model_->unflatten_parameters(flat);
    }
  }
  return tasks_contributed == 0
             ? std::numeric_limits<double>::infinity()
             : loss_sum / static_cast<double>(tasks_contributed);
}

MamlTrainer::TaskOutcome MamlTrainer::run_task(const data::Task& task) const {
  TaskOutcome out;
  auto sup_y = scaler_.transform(task.support_y);
  auto qry_y = scaler_.transform(task.query_y);
  if (t::has_nonfinite(sup_y) || t::has_nonfinite(qry_y)) {
    out.skipped = true;  // poisoned labels: drop before they touch theta
    return out;
  }

  // Inner loop on a clone (theta-hat). ANIL restricts the inner loop to the
  // regression head.
  auto clone = model_->clone();
  clone->set_capture_attention(true);
  const auto inner_params = options_.algorithm == MetaAlgorithm::kAnil
                                ? clone->head_parameters()
                                : clone->parameters();
  nn::Sgd inner(inner_params, options_.inner_lr);
  tensor::Rng fwd(0);
  bool diverged = false;
  // Only the final step's attention map is read (below), and a capturing
  // forward cannot be replayed from a static tape; keeping capture off until
  // the last iteration lets the earlier steps replay the captured tape.
  // The map consumed after the loop is unchanged — it always came from the
  // final support forward.
  nn::plan::TapePlan tape;
  for (size_t step = 0; step < options_.inner_steps; ++step) {
    const bool last = step + 1 == options_.inner_steps;
    clone->set_capture_attention(last);
    inner.zero_grad();
    float lv = 0.0F;
    if (last || !tape.step(*clone, task.support_x, sup_y, fwd, lv,
                           /*skip_backward_nonfinite=*/true)) {
      auto loss = t::mse_loss(
          clone->forward(task.support_x, fwd, /*train=*/true), sup_y);
      lv = loss.item();
      if (std::isfinite(lv)) loss.backward();
    }
    if (!std::isfinite(lv)) {
      diverged = true;
      break;
    }
    // Fused clip+update: bitwise identical to clip_global_grad_norm
    // followed by step(), one pass over the gradients instead of three.
    inner.clip_and_step(options_.clip_norm);
  }
  clone->set_capture_attention(true);  // query forward captures, as before
  if (diverged || t::any_nonfinite(clone->parameters())) {
    out.skipped = true;
    return out;
  }
  // Capture the attention map observed on the adapted model (the "mask
  // candidates" of the WAM algorithm). A non-finite map would poison the
  // WAM for every later adaptation, so it is dropped too.
  {
    const auto& attn = clone->last_attention_layer().last_attention();
    const auto& av = attn.data();
    if (!t::has_nonfinite(av)) out.attention = av;
  }

  // Outer objective: query loss at the adapted parameters.
  clone->zero_grad();
  auto query_loss = t::mse_loss(
      clone->forward(task.query_x, fwd, /*train=*/true), qry_y);
  const double q = query_loss.item();
  if (!std::isfinite(q)) {
    out.skipped = true;
    return out;
  }
  if (options_.algorithm != MetaAlgorithm::kReptile) {
    query_loss.backward();
    auto cparams = clone->parameters();
    for (const auto& p : cparams) {
      if (t::has_nonfinite(p.node()->grad)) {
        out.skipped = true;
        return out;
      }
    }
    // Copy the gradients into pooled buffers; the reducer hands them back
    // to the pool after folding them into the meta-gradient accumulator.
    out.grads.reserve(cparams.size());
    for (auto& p : cparams) {
      const auto& g = p.node()->grad;
      auto buf = t::BufferPool::acquire(g.size());
      std::copy(g.begin(), g.end(), buf.begin());
      out.grads.push_back(std::move(buf));
    }
  } else {
    // Reptile: one more inner step on the query set, then move toward the
    // adapted parameters.
    nn::Sgd extra(clone->parameters(), options_.inner_lr);
    extra.zero_grad();
    query_loss.backward();
    extra.clip_and_step(options_.clip_norm);
    auto adapted = clone->flatten_parameters();
    if (t::has_nonfinite(adapted)) {
      out.skipped = true;
      return out;
    }
    const auto init = model_->flatten_parameters();
    for (size_t i = 0; i < adapted.size(); ++i) adapted[i] -= init[i];
    out.reptile_delta = std::move(adapted);
  }
  out.query_loss = q;
  return out;
}

double MamlTrainer::meta_validate(const std::vector<data::Dataset>& val_sets,
                                  tensor::Rng& rng) const {
  // Draw every validation task first (serial, fixed RNG order), adapt them
  // on the pool, and sum the losses in task order — bitwise equal to the
  // serial loop for any thread count.
  std::vector<data::Task> tasks;
  tasks.reserve(val_sets.size() * options_.val_tasks_per_workload);
  for (const auto& ds : val_sets) {
    data::TaskSampler sampler(ds, options_.support, options_.query,
                              options_.target);
    for (size_t k = 0; k < options_.val_tasks_per_workload; ++k) {
      tasks.push_back(sampler.sample(rng));
    }
  }
  double loss_sum = 0.0;
  core::parallel_map_reduce<double>(
      tasks.size(),
      [&](size_t i) {
        const auto& task = tasks[i];
        auto sup_y = scaler_.transform(task.support_y);
        auto qry_y = scaler_.transform(task.query_y);
        auto adapted =
            adapt_clone(*model_, task.support_x, sup_y, options_.inner_steps,
                        options_.inner_lr,
                        options_.algorithm == MetaAlgorithm::kAnil);
        tensor::Rng fwd(0);
        // Adaptation above needs the graph; the query evaluation does not.
        tensor::NoGradGuard no_grad;
        return t::mse_loss(adapted->forward(task.query_x, fwd), qry_y).item();
      },
      [&](size_t, double loss) { loss_sum += loss; });
  return tasks.empty() ? 0.0
                       : loss_sum / static_cast<double>(tasks.size());
}

const nn::TransformerRegressor& MamlTrainer::model() const { return *model_; }
nn::TransformerRegressor& MamlTrainer::model() { return *model_; }

const nn::TransformerRegressor& MamlTrainer::best_model() const {
  return best_model_ ? *best_model_ : *model_;
}

tensor::Tensor MamlTrainer::mean_attention() const {
  if (attention_count_ == 0) {
    throw std::logic_error("MamlTrainer: no attention accumulated (train first)");
  }
  std::vector<float> m(attention_sum_.size());
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(attention_sum_[i] /
                              static_cast<double>(attention_count_));
  }
  return tensor::Tensor::from_vector({cfg_.n_tokens, cfg_.n_tokens},
                                     std::move(m));
}

std::unique_ptr<nn::TransformerRegressor> MamlTrainer::adapt_clone(
    const nn::TransformerRegressor& model, const tensor::Tensor& support_x,
    const tensor::Tensor& support_y, size_t steps, float lr,
    bool head_only) {
  auto clone = model.clone();
  nn::Sgd inner(head_only ? clone->head_parameters() : clone->parameters(),
                lr);
  tensor::Rng fwd(0);
  // First step captures the forward+backward tape, later steps replay it —
  // same ops on the same nodes, so adapted weights are bitwise unchanged.
  nn::plan::TapePlan tape;
  for (size_t step = 0; step < steps; ++step) {
    inner.zero_grad();
    float lv = 0.0F;
    if (!tape.step(*clone, support_x, support_y, fwd, lv)) {
      auto loss = t::mse_loss(clone->forward(support_x, fwd, /*train=*/true),
                              support_y);
      loss.backward();
    }
    inner.step();
  }
  return clone;
}

}  // namespace metadse::meta
