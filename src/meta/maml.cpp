#include "meta/maml.hpp"

#include <cstdio>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace metadse::meta {

namespace t = metadse::tensor;

MamlTrainer::MamlTrainer(nn::TransformerConfig predictor, MamlOptions options)
    : cfg_(predictor), options_(options) {
  if (options_.support == 0 || options_.query == 0 ||
      options_.inner_steps == 0 || options_.meta_batch == 0) {
    throw std::invalid_argument("MamlOptions: zero-sized training knob");
  }
  cfg_.n_outputs = data::target_width(options_.target);
  tensor::Rng rng(options_.seed);
  model_ = std::make_unique<nn::TransformerRegressor>(cfg_, rng);
}

void MamlTrainer::train(const std::vector<data::Dataset>& train_sets,
                        const std::vector<data::Dataset>& val_sets) {
  if (train_sets.empty()) {
    throw std::invalid_argument("MamlTrainer::train: no source datasets");
  }
  scaler_ = data::Scaler();
  scaler_.fit(train_sets, options_.target);
  attention_sum_.assign(cfg_.n_tokens * cfg_.n_tokens, 0.0);
  attention_count_ = 0;
  trace_.clear();

  outer_opt_ = std::make_unique<nn::Adam>(model_->parameters(),
                                          options_.outer_lr);
  tensor::Rng rng(options_.seed + 1);
  double best_val = 1e300;
  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    EpochTrace tr;
    tr.train_meta_loss = run_epoch(train_sets, rng);
    tr.val_loss = val_sets.empty() ? tr.train_meta_loss
                                   : meta_validate(val_sets, rng);
    trace_.push_back(tr);
    if (tr.val_loss <= best_val) {
      best_val = tr.val_loss;
      best_model_ = model_->clone();
    }
    if (options_.verbose) {
      std::fprintf(stderr,
                   "[maml] epoch %zu/%zu meta-loss %.4f val-loss %.4f\n",
                   epoch + 1, options_.epochs, tr.train_meta_loss,
                   tr.val_loss);
    }
  }
  if (best_model_) model_->copy_parameters_from(*best_model_);
}

double MamlTrainer::run_epoch(const std::vector<data::Dataset>& train_sets,
                              tensor::Rng& rng) {
  // Pre-build task samplers (one per workload).
  std::vector<data::TaskSampler> samplers;
  samplers.reserve(train_sets.size());
  for (const auto& ds : train_sets) {
    samplers.emplace_back(ds, options_.support, options_.query,
                          options_.target);
  }
  const size_t total_tasks =
      options_.tasks_per_workload * train_sets.size();
  const auto params = model_->parameters();

  double loss_sum = 0.0;
  size_t tasks_done = 0;
  while (tasks_done < total_tasks) {
    const size_t batch =
        std::min(options_.meta_batch, total_tasks - tasks_done);
    // Meta-gradient accumulator, aligned with the parameter list.
    std::vector<std::vector<float>> meta_grad(params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      meta_grad[i].assign(params[i].size(), 0.0F);
    }
    std::vector<float> reptile_delta;  // flat, for Reptile
    if (options_.algorithm == MetaAlgorithm::kReptile) {
      reptile_delta.assign(model_->parameter_count(), 0.0F);
    }

    for (size_t b = 0; b < batch; ++b) {
      // Sample a task from a random source workload (T_i ~ P(T)).
      const size_t w = rng.uniform_index(samplers.size());
      data::Task task = samplers[w].sample(rng);
      auto sup_y = scaler_.transform(task.support_y);
      auto qry_y = scaler_.transform(task.query_y);

      // Inner loop on a clone (theta-hat). ANIL restricts the inner loop
      // to the regression head.
      auto clone = model_->clone();
      clone->set_capture_attention(true);
      nn::Sgd inner(options_.algorithm == MetaAlgorithm::kAnil
                        ? clone->head_parameters()
                        : clone->parameters(),
                    options_.inner_lr);
      tensor::Rng fwd(0);
      for (size_t step = 0; step < options_.inner_steps; ++step) {
        inner.zero_grad();
        auto loss = t::mse_loss(
            clone->forward(task.support_x, fwd, /*train=*/true), sup_y);
        loss.backward();
        inner.step();
      }
      // Accumulate the attention map observed on the adapted model (the
      // "mask candidates" of the WAM algorithm).
      {
        const auto& attn = clone->last_attention_layer().last_attention();
        const auto& av = attn.data();
        for (size_t i = 0; i < av.size(); ++i) attention_sum_[i] += av[i];
        ++attention_count_;
      }

      // Outer objective: query loss at the adapted parameters.
      clone->zero_grad();
      auto query_loss =
          t::mse_loss(clone->forward(task.query_x, fwd, /*train=*/true),
                      qry_y);
      loss_sum += query_loss.item();
      if (options_.algorithm != MetaAlgorithm::kReptile) {
        query_loss.backward();
        auto cparams = clone->parameters();
        for (size_t i = 0; i < cparams.size(); ++i) {
          const auto& g = cparams[i].grad();
          for (size_t j = 0; j < g.size(); ++j) meta_grad[i][j] += g[j];
        }
      } else {
        // Reptile: one more inner step on the query set, then move toward
        // the adapted parameters.
        nn::Sgd extra(clone->parameters(), options_.inner_lr);
        extra.zero_grad();
        query_loss.backward();
        extra.step();
        const auto adapted = clone->flatten_parameters();
        const auto init = model_->flatten_parameters();
        for (size_t i = 0; i < adapted.size(); ++i) {
          reptile_delta[i] += adapted[i] - init[i];
        }
      }
      ++tasks_done;
    }

    // Outer update from the averaged task gradients.
    if (options_.algorithm != MetaAlgorithm::kReptile) {
      const float inv = 1.0F / static_cast<float>(batch);
      auto mparams = model_->parameters();
      for (size_t i = 0; i < mparams.size(); ++i) {
        auto& g = mparams[i].grad();
        for (size_t j = 0; j < g.size(); ++j) g[j] = meta_grad[i][j] * inv;
      }
      outer_opt_->step();
      outer_opt_->zero_grad();
    } else {
      auto flat = model_->flatten_parameters();
      const float step =
          options_.reptile_step / static_cast<float>(batch);
      for (size_t i = 0; i < flat.size(); ++i) {
        flat[i] += step * reptile_delta[i];
      }
      model_->unflatten_parameters(flat);
    }
  }
  return loss_sum / static_cast<double>(total_tasks);
}

double MamlTrainer::meta_validate(const std::vector<data::Dataset>& val_sets,
                                  tensor::Rng& rng) const {
  double loss_sum = 0.0;
  size_t count = 0;
  for (const auto& ds : val_sets) {
    data::TaskSampler sampler(ds, options_.support, options_.query,
                              options_.target);
    for (size_t k = 0; k < options_.val_tasks_per_workload; ++k) {
      data::Task task = sampler.sample(rng);
      auto sup_y = scaler_.transform(task.support_y);
      auto qry_y = scaler_.transform(task.query_y);
      auto adapted =
          adapt_clone(*model_, task.support_x, sup_y, options_.inner_steps,
                      options_.inner_lr,
                      options_.algorithm == MetaAlgorithm::kAnil);
      tensor::Rng fwd(0);
      auto loss =
          t::mse_loss(adapted->forward(task.query_x, fwd), qry_y);
      loss_sum += loss.item();
      ++count;
    }
  }
  return count == 0 ? 0.0 : loss_sum / static_cast<double>(count);
}

const nn::TransformerRegressor& MamlTrainer::model() const { return *model_; }
nn::TransformerRegressor& MamlTrainer::model() { return *model_; }

tensor::Tensor MamlTrainer::mean_attention() const {
  if (attention_count_ == 0) {
    throw std::logic_error("MamlTrainer: no attention accumulated (train first)");
  }
  std::vector<float> m(attention_sum_.size());
  for (size_t i = 0; i < m.size(); ++i) {
    m[i] = static_cast<float>(attention_sum_[i] /
                              static_cast<double>(attention_count_));
  }
  return tensor::Tensor::from_vector({cfg_.n_tokens, cfg_.n_tokens},
                                     std::move(m));
}

std::unique_ptr<nn::TransformerRegressor> MamlTrainer::adapt_clone(
    const nn::TransformerRegressor& model, const tensor::Tensor& support_x,
    const tensor::Tensor& support_y, size_t steps, float lr,
    bool head_only) {
  auto clone = model.clone();
  nn::Sgd inner(head_only ? clone->head_parameters() : clone->parameters(),
                lr);
  tensor::Rng fwd(0);
  for (size_t step = 0; step < steps; ++step) {
    inner.zero_grad();
    auto loss =
        t::mse_loss(clone->forward(support_x, fwd, /*train=*/true), support_y);
    loss.backward();
    inner.step();
  }
  return clone;
}

}  // namespace metadse::meta
