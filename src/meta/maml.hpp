// MAML-based pre-training (paper Algorithm 1). The inner loop adapts a clone
// of the surrogate on each task's support set with SGD; the outer loop
// updates the original parameters from the accumulated query-set gradients
// with Adam. Gradients at the adapted parameters are applied directly to the
// initialization (first-order MAML); Reptile is available as an ablation.
// A meta-validation pass after every epoch keeps the best initialization,
// and last-layer attention maps are accumulated for WAM generation.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "nn/optim.hpp"
#include "nn/transformer.hpp"

namespace metadse::meta {

/// Meta-training algorithm selection.
enum class MetaAlgorithm {
  kFomaml,   ///< first-order MAML (the paper's Algorithm 1, see DESIGN.md)
  kReptile,  ///< Reptile: interpolate toward adapted parameters
  kAnil,     ///< ANIL: inner loop adapts only the regression head
};

/// Pre-training hyper-parameters (§VI-A; counts are configurable so the
/// benches can trade replication for wall-clock on small hosts).
struct MamlOptions {
  size_t epochs = 15;
  size_t tasks_per_workload = 200;  ///< tasks sampled per workload per epoch
  size_t support = 5;               ///< s: support samples per task
  size_t query = 45;                ///< q: query samples per task
  size_t inner_steps = 5;           ///< SGD steps in the inner loop
  size_t meta_batch = 4;            ///< tasks per outer update
  float inner_lr = 1e-2F;           ///< alpha (for standardized labels)
  float outer_lr = 1e-3F;           ///< beta (Adam)
  float reptile_step = 0.5F;        ///< Reptile interpolation factor
  MetaAlgorithm algorithm = MetaAlgorithm::kFomaml;
  data::TargetMetric target = data::TargetMetric::kIpc;
  /// Meta-validation tasks per validation workload per epoch.
  size_t val_tasks_per_workload = 10;
  uint64_t seed = 97;
  bool verbose = false;

  // -- fault tolerance ------------------------------------------------------
  /// Global-norm gradient clip applied in both the inner and outer loops
  /// (<= 0 disables). Bounds any single bad task's influence on the
  /// initialization.
  float clip_norm = 10.0F;
  /// An epoch whose meta-loss is non-finite or exceeds
  /// divergence_factor x the best finite meta-loss so far counts as "bad".
  float divergence_factor = 4.0F;
  /// Consecutive bad epochs tolerated before rolling back to the best
  /// snapshot (0 disables divergence recovery).
  size_t max_bad_epochs = 2;
  /// Outer (Adam) learning-rate multiplier applied on each rollback.
  float rollback_lr_decay = 0.5F;
};

/// Per-epoch training trace (for tests, ablation plots, and post-mortems of
/// recovery events).
struct EpochTrace {
  double train_meta_loss = 0.0;  ///< mean query loss after inner adaptation
  double val_loss = 0.0;         ///< meta-validation loss (post-adaptation)
  size_t skipped_tasks = 0;      ///< tasks dropped for non-finite loss/params
  size_t skipped_batches = 0;    ///< outer updates dropped (no usable grads)
  bool rolled_back = false;      ///< divergence recovery fired this epoch
  float outer_lr = 0.0F;         ///< outer LR in effect after this epoch
};

/// Runs Algorithm 1 over the source workloads' datasets.
class MamlTrainer {
 public:
  /// Completed-training state used to resume a killed run: the surviving
  /// parameters plus everything train() accumulates across epochs.
  struct WarmStart {
    std::vector<float> parameters;      ///< flat init for the model
    std::vector<EpochTrace> trace;      ///< epochs already completed
    std::vector<double> attention_sum;  ///< running [S*S] attention sum
    size_t attention_count = 0;
    double best_val = 1e300;            ///< best meta-validation loss so far
  };

  MamlTrainer(nn::TransformerConfig predictor, MamlOptions options);

  /// Meta-trains on @p train_sets with meta-validation on @p val_sets
  /// (may be empty: then the final epoch's parameters win). Labels are
  /// standardized with a scaler fit on @p train_sets only.
  void train(const std::vector<data::Dataset>& train_sets,
             const std::vector<data::Dataset>& val_sets);

  /// Installs resume state consumed by the next train() call: training
  /// continues from trace.size() completed epochs instead of epoch 0.
  /// Note the RNG stream is re-seeded, so a resumed run is deterministic
  /// given its checkpoint but not bit-identical to an uninterrupted run.
  void set_warm_start(WarmStart ws);

  /// Called after every completed epoch (auto-checkpointing hook).
  void set_epoch_callback(
      std::function<void(size_t epoch, const EpochTrace&)> cb) {
    epoch_callback_ = std::move(cb);
  }

  /// The meta-trained predictor (best meta-validation epoch).
  const nn::TransformerRegressor& model() const;
  nn::TransformerRegressor& model();

  /// Best-meta-validation snapshot so far (falls back to the live model
  /// before the first validation pass) — what auto-checkpoints persist.
  const nn::TransformerRegressor& best_model() const;
  /// Best meta-validation loss observed so far.
  double best_val_loss() const { return best_val_; }
  /// Raw attention accumulator (for checkpoint resume).
  const std::vector<double>& attention_sum() const { return attention_sum_; }

  /// Label scaler fit on the source workloads.
  const data::Scaler& scaler() const { return scaler_; }

  /// Mean of the last-layer attention maps accumulated across all
  /// inner-loop adaptations ([n_tokens, n_tokens]); input to WAM.
  tensor::Tensor mean_attention() const;
  /// Number of attention maps accumulated.
  size_t attention_count() const { return attention_count_; }

  const std::vector<EpochTrace>& trace() const { return trace_; }
  const MamlOptions& options() const { return options_; }

  /// Adapts a clone of @p model on a support set (plain fine-tuning with
  /// @p steps of SGD at @p lr) and returns it — the shared inner-loop /
  /// no-WAM adaptation primitive. @p head_only restricts the update to the
  /// regression head (ANIL).
  static std::unique_ptr<nn::TransformerRegressor> adapt_clone(
      const nn::TransformerRegressor& model, const tensor::Tensor& support_x,
      const tensor::Tensor& support_y, size_t steps, float lr,
      bool head_only = false);

 private:
  /// What one meta-batch task computes on a pool worker (see maml.cpp).
  struct TaskOutcome;

  double run_epoch(const std::vector<data::Dataset>& train_sets,
                   tensor::Rng& rng, EpochTrace& tr);
  /// Inner-adapts one sampled task and returns its meta-gradient /
  /// attention contribution. Pure with respect to trainer state (reads
  /// model_ and scaler_ only), so tasks of a meta-batch run concurrently.
  TaskOutcome run_task(const data::Task& task) const;
  double meta_validate(const std::vector<data::Dataset>& val_sets,
                       tensor::Rng& rng) const;

  nn::TransformerConfig cfg_;
  MamlOptions options_;
  std::unique_ptr<nn::TransformerRegressor> model_;
  std::unique_ptr<nn::TransformerRegressor> best_model_;
  std::unique_ptr<nn::Adam> outer_opt_;
  data::Scaler scaler_;
  std::vector<EpochTrace> trace_;
  std::vector<double> attention_sum_;  ///< running sum of [S,S] maps
  size_t attention_count_ = 0;
  double best_val_ = 1e300;
  std::function<void(size_t, const EpochTrace&)> epoch_callback_;
  std::unique_ptr<WarmStart> warm_start_;
};

}  // namespace metadse::meta
