#include "meta/ensemble_adapt.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace metadse::meta {

AdaptedEnsemble AdaptedEnsemble::create(
    const nn::TransformerRegressor& pretrained, const tensor::Tensor& mask,
    const tensor::Tensor& support_x, const tensor::Tensor& support_y,
    const EnsembleAdaptOptions& options) {
  if (options.n_members == 0 || options.bootstrap_fraction <= 0.0 ||
      options.bootstrap_fraction > 1.0) {
    throw std::invalid_argument("EnsembleAdaptOptions: invalid knob");
  }
  const size_t n = support_x.dim(0);
  const size_t n_feat = support_x.dim(1);
  const size_t width = support_y.dim(1);
  const size_t take = std::max<size_t>(
      2, static_cast<size_t>(options.bootstrap_fraction *
                             static_cast<double>(n)));

  tensor::Rng rng(options.seed);
  AdaptedEnsemble ens;
  ens.members_.reserve(options.n_members);
  for (size_t m = 0; m < options.n_members; ++m) {
    std::vector<size_t> idx(n);
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);
    idx.resize(std::min(take, n));
    std::vector<float> xs;
    std::vector<float> ys;
    for (size_t i : idx) {
      xs.insert(xs.end(), support_x.data().begin() + i * n_feat,
                support_x.data().begin() + (i + 1) * n_feat);
      ys.insert(ys.end(), support_y.data().begin() + i * width,
                support_y.data().begin() + (i + 1) * width);
    }
    auto bx = tensor::Tensor::from_vector({idx.size(), n_feat}, std::move(xs));
    auto by = tensor::Tensor::from_vector({idx.size(), width}, std::move(ys));
    ens.members_.push_back(
        wam_adapt(pretrained, mask, bx, by, options.adapt));
  }
  return ens;
}

AdaptedEnsemble::Prediction AdaptedEnsemble::predict(
    const std::vector<float>& features) const {
  if (members_.empty()) throw std::logic_error("AdaptedEnsemble: empty");
  double sum = 0.0;
  double sum2 = 0.0;
  for (const auto& m : members_) {
    const double y = m->predict_one(features).front();
    sum += y;
    sum2 += y * y;
  }
  const double n = static_cast<double>(members_.size());
  Prediction p;
  p.mean = static_cast<float>(sum / n);
  const double var = std::max(0.0, sum2 / n - (sum / n) * (sum / n));
  p.stddev = static_cast<float>(std::sqrt(var));
  return p;
}

std::vector<AdaptedEnsemble::Prediction> AdaptedEnsemble::predict_batch(
    const std::vector<std::vector<float>>& rows) const {
  if (members_.empty()) throw std::logic_error("AdaptedEnsemble: empty");
  std::vector<double> sum(rows.size(), 0.0);
  std::vector<double> sum2(rows.size(), 0.0);
  for (const auto& m : members_) {
    const auto ys = m->predict_batch(rows);
    for (size_t i = 0; i < rows.size(); ++i) {
      const double y = ys[i].front();
      sum[i] += y;
      sum2[i] += y * y;
    }
  }
  const double n = static_cast<double>(members_.size());
  std::vector<Prediction> out(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    out[i].mean = static_cast<float>(sum[i] / n);
    const double var =
        std::max(0.0, sum2[i] / n - (sum[i] / n) * (sum[i] / n));
    out[i].stddev = static_cast<float>(std::sqrt(var));
  }
  return out;
}

data::Dataset select_support_actively(
    const nn::TransformerRegressor& pretrained, const tensor::Tensor& mask,
    const data::Scaler& scaler, const arch::DesignSpace& space,
    const std::vector<arch::Config>& pool, const LabelOracle& oracle,
    size_t budget, const EnsembleAdaptOptions& options) {
  if (budget < 3) {
    throw std::invalid_argument("select_support_actively: budget must be >= 3");
  }
  if (pool.size() < budget) {
    throw std::invalid_argument("select_support_actively: pool too small");
  }

  data::Dataset support;
  support.workload = "active-selection";
  std::vector<bool> used(pool.size(), false);
  tensor::Rng rng(options.seed + 1);

  auto label = [&](size_t pool_idx) {
    used[pool_idx] = true;
    data::Sample s;
    s.config = pool[pool_idx];
    s.features = space.normalize(pool[pool_idx]);
    const auto [ipc, power] = oracle(pool[pool_idx]);
    s.ipc = static_cast<float>(ipc);
    s.power = static_cast<float>(power);
    support.samples.push_back(std::move(s));
  };

  // Seed: three random picks (an ensemble needs something to disagree on).
  for (int k = 0; k < 3; ++k) {
    size_t i = rng.uniform_index(pool.size());
    while (used[i]) i = rng.uniform_index(pool.size());
    label(i);
  }

  while (support.size() < budget) {
    // Re-adapt the ensemble on everything labelled so far.
    const size_t n = support.size();
    const size_t n_feat = support.samples.front().features.size();
    std::vector<float> xs;
    std::vector<float> ys;
    for (const auto& s : support.samples) {
      xs.insert(xs.end(), s.features.begin(), s.features.end());
      ys.push_back(scaler.transform({s.ipc}).front());
    }
    auto sx = tensor::Tensor::from_vector({n, n_feat}, std::move(xs));
    auto sy = tensor::Tensor::from_vector({n, 1}, std::move(ys));
    const auto ens =
        AdaptedEnsemble::create(pretrained, mask, sx, sy, options);

    // Acquire the unlabelled candidate with maximal disagreement. One
    // batched sweep over the pool; the strictly-greater scan keeps the same
    // first-maximum tie-breaking as the per-point loop.
    std::vector<size_t> cand;
    std::vector<std::vector<float>> feats;
    cand.reserve(pool.size() - support.size());
    feats.reserve(pool.size() - support.size());
    for (size_t i = 0; i < pool.size(); ++i) {
      if (used[i]) continue;
      cand.push_back(i);
      feats.push_back(space.normalize(pool[i]));
    }
    const auto preds = ens.predict_batch(feats);
    double best_std = -1.0;
    size_t best_i = 0;
    for (size_t j = 0; j < cand.size(); ++j) {
      if (preds[j].stddev > best_std) {
        best_std = preds[j].stddev;
        best_i = cand[j];
      }
    }
    label(best_i);
  }
  return support;
}

}  // namespace metadse::meta
