// Extension beyond the paper: uncertainty-aware adaptation. An ensemble of
// independently adapted predictors (bootstrap resamples of the support set)
// yields epistemic uncertainty from member disagreement, which in turn
// enables *active* support selection — spending the K-simulation budget on
// the design points the current predictor is least sure about, instead of
// random ones. (The paper lists sample-efficient adaptation as the goal;
// this is the natural next step its framework enables.)
#pragma once

#include <functional>
#include <memory>
#include <utility>

#include "data/dataset.hpp"
#include "meta/wam.hpp"

namespace metadse::meta {

/// Knobs for the adapted ensemble.
struct EnsembleAdaptOptions {
  size_t n_members = 5;
  /// Fraction of the support set each member sees (sampled w/o replacement).
  double bootstrap_fraction = 0.8;
  AdaptOptions adapt{};
  uint64_t seed = 131;
};

/// An ensemble of predictors adapted from the same meta-initialization on
/// bootstrap resamples of one support set.
class AdaptedEnsemble {
 public:
  /// Prediction with epistemic uncertainty (member disagreement).
  struct Prediction {
    float mean = 0.0F;
    float stddev = 0.0F;
  };

  /// Adapts options.n_members clones. @p mask may be undefined when
  /// options.adapt.use_wam is false. Labels must already be standardized.
  static AdaptedEnsemble create(const nn::TransformerRegressor& pretrained,
                                const tensor::Tensor& mask,
                                const tensor::Tensor& support_x,
                                const tensor::Tensor& support_y,
                                const EnsembleAdaptOptions& options);

  /// Mean and stddev of the members' predictions (standardized space).
  Prediction predict(const std::vector<float>& features) const;

  /// Batched form: one no-grad batched forward per member. Element i is
  /// bitwise identical to predict(rows[i]) — member contributions combine in
  /// the same ascending order either way.
  std::vector<Prediction> predict_batch(
      const std::vector<std::vector<float>>& rows) const;

  size_t size() const { return members_.size(); }

 private:
  std::vector<std::unique_ptr<nn::TransformerRegressor>> members_;
};

/// Labels one design point: (ipc, power), e.g. DatasetGenerator::evaluate.
using LabelOracle =
    std::function<std::pair<double, double>(const arch::Config&)>;

/// Greedy max-uncertainty support selection: seed with a few random picks,
/// then repeatedly label the pool candidate where the ensemble (re-adapted
/// on everything labelled so far) disagrees most, until @p budget points are
/// labelled. Returns the labelled support dataset (in labelling order).
data::Dataset select_support_actively(
    const nn::TransformerRegressor& pretrained, const tensor::Tensor& mask,
    const data::Scaler& scaler, const arch::DesignSpace& space,
    const std::vector<arch::Config>& pool, const LabelOracle& oracle,
    size_t budget, const EnsembleAdaptOptions& options);

}  // namespace metadse::meta
