#include "meta/wam.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace metadse::meta {

namespace t = metadse::tensor;

WamGenerator::WamGenerator(size_t n_tokens) : n_(n_tokens) {
  if (n_tokens == 0) throw std::invalid_argument("WamGenerator: n_tokens == 0");
  hits_.assign(n_ * n_, 0.0);
}

void WamGenerator::accumulate(const tensor::Tensor& attention) {
  if (attention.shape() != tensor::Shape{n_, n_}) {
    throw std::invalid_argument("WamGenerator: attention must be [n, n]");
  }
  const auto& a = attention.data();
  for (size_t r = 0; r < n_; ++r) {
    double row_mean = 0.0;
    for (size_t c = 0; c < n_; ++c) row_mean += a[r * n_ + c];
    row_mean /= static_cast<double>(n_);
    for (size_t c = 0; c < n_; ++c) {
      if (a[r * n_ + c] > row_mean) hits_[r * n_ + c] += 1.0;
    }
  }
  ++count_;
}

namespace {

tensor::Tensor threshold_mask(const std::vector<double>& score, size_t n,
                              const WamOptions& options) {
  if (options.keep_fraction <= 0.0 || options.keep_fraction > 1.0) {
    throw std::invalid_argument("WamOptions: keep_fraction in (0, 1]");
  }
  if (options.suppressed_value < 0.0F || options.suppressed_value > 1.0F) {
    throw std::invalid_argument("WamOptions: suppressed_value in [0, 1]");
  }
  std::vector<float> m(n * n, options.suppressed_value);
  if (options.mode == WamMode::kBinary) {
    // Rank off-diagonal scores; keep the top keep_fraction.
    std::vector<double> off;
    off.reserve(n * n - n);
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        if (r != c) off.push_back(score[r * n + c]);
      }
    }
    std::sort(off.begin(), off.end());
    const size_t keep = std::max<size_t>(
        1, static_cast<size_t>(options.keep_fraction *
                               static_cast<double>(off.size())));
    const double cut = off[off.size() - keep];
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < n; ++c) {
        if (r == c || score[r * n + c] >= cut) m[r * n + c] = 1.0F;
      }
    }
  } else {
    // Continuous: per row, scale scores so the row maximum keeps weight 1
    // and rarer interactions fall toward the suppressed floor.
    for (size_t r = 0; r < n; ++r) {
      double row_max = 0.0;
      for (size_t c = 0; c < n; ++c) {
        row_max = std::max(row_max, score[r * n + c]);
      }
      for (size_t c = 0; c < n; ++c) {
        const double rel = row_max > 0.0 ? score[r * n + c] / row_max : 1.0;
        m[r * n + c] = options.suppressed_value +
                       (1.0F - options.suppressed_value) *
                           static_cast<float>(rel);
      }
      m[r * n + r] = 1.0F;  // self-interaction always kept
    }
  }
  return tensor::Tensor::from_vector({n, n}, std::move(m));
}

}  // namespace

tensor::Tensor WamGenerator::generate(const WamOptions& options) const {
  if (count_ == 0) {
    throw std::logic_error("WamGenerator: no attention maps accumulated");
  }
  return threshold_mask(hits_, n_, options);
}

tensor::Tensor WamGenerator::from_mean_attention(
    const tensor::Tensor& mean_attn, const WamOptions& options) {
  if (mean_attn.rank() != 2 || mean_attn.dim(0) != mean_attn.dim(1)) {
    throw std::invalid_argument("from_mean_attention: need square [n, n]");
  }
  const size_t n = mean_attn.dim(0);
  std::vector<double> score(mean_attn.data().begin(), mean_attn.data().end());
  return threshold_mask(score, n, options);
}

std::unique_ptr<nn::TransformerRegressor> wam_adapt(
    const nn::TransformerRegressor& pretrained, const tensor::Tensor& mask,
    const tensor::Tensor& support_x, const tensor::Tensor& support_y,
    const AdaptOptions& options) {
  if (options.steps == 0) {
    throw std::invalid_argument("AdaptOptions: steps must be > 0");
  }
  auto model = pretrained.clone();

  // Algorithm 2 lines 1-2: equip f with M; set M learnable. The mask gets
  // its own (faster) optimizer: it starts from the WAM prior and must move
  // within ten steps, while the backbone starts from the meta-trained
  // initialization and only needs a nudge.
  std::vector<tensor::Tensor> params = model->parameters();
  std::optional<nn::Sgd> mask_opt;
  if (options.use_wam) {
    if (!mask.defined()) {
      throw std::invalid_argument("wam_adapt: use_wam set but mask undefined");
    }
    std::vector<tensor::Tensor> masks;
    if (options.mask_all_layers) {
      model->install_mask_all_layers(mask);
      for (size_t i = 0; i < model->layer_count(); ++i) {
        masks.push_back(model->attention_layer(i).mask());
      }
    } else {
      model->last_attention_layer().install_mask(mask.detach());
      masks.push_back(model->last_attention_layer().mask());
    }
    if (options.learn_mask) {
      for (auto& m : masks) m.set_requires_grad(true);
      mask_opt.emplace(std::move(masks), options.lr * options.mask_lr_scale);
    }
  } else {
    model->clear_masks();
  }

  // Ten gradient steps with cosine annealing (§VI-A).
  nn::Sgd opt(params, options.lr);
  nn::CosineAnnealing sched(options.lr, options.steps);
  tensor::Rng fwd(0);
  for (size_t step = 0; step < options.steps; ++step) {
    opt.set_lr(sched.lr_at(step));
    if (mask_opt) {
      mask_opt->set_lr(sched.lr_at(step) * options.mask_lr_scale);
    }
    opt.zero_grad();
    if (mask_opt) mask_opt->zero_grad();
    auto loss = t::mse_loss(
        model->forward(support_x, fwd, /*train=*/true), support_y);
    loss.backward();
    opt.step();
    if (mask_opt) mask_opt->step();
  }
  return model;
}

}  // namespace metadse::meta
