#include "arch/design_space.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace metadse::arch {

namespace {

std::vector<double> range_values(double start, double end, double stride) {
  std::vector<double> v;
  for (double x = start; x <= end + 1e-9; x += stride) v.push_back(x);
  return v;
}

}  // namespace

DesignSpace::DesignSpace(std::vector<ParamSpec> specs)
    : specs_(std::move(specs)) {
  if (specs_.empty()) {
    throw std::invalid_argument("DesignSpace: no parameters");
  }
  for (const auto& s : specs_) {
    if (s.values.empty()) {
      throw std::invalid_argument("DesignSpace: parameter '" + s.name +
                                  "' has no candidate values");
    }
    if (!std::is_sorted(s.values.begin(), s.values.end())) {
      throw std::invalid_argument("DesignSpace: parameter '" + s.name +
                                  "' values must be increasing");
    }
  }
}

const DesignSpace& DesignSpace::table1() {
  static const DesignSpace space{std::vector<ParamSpec>{
      {"core_freq_ghz", "CPU core frequency in GHz", {1.0, 1.5, 2.0, 2.5, 3.0}},
      {"pipeline_width",
       "fetch/decode/rename/dispatch/issue/writeback/commit width",
       range_values(1, 12, 1)},
      {"fetch_buffer_bytes", "fetch buffer size in bytes", {16, 32, 64}},
      {"fetch_queue_uops", "fetch queue size in micro-ops",
       range_values(8, 48, 4)},
      {"branch_predictor", "predictor type (0=BiModeBP, 1=TournamentBP)",
       {0, 1}},
      {"ras_size", "return address stack entries", range_values(16, 40, 2)},
      {"btb_size", "branch target buffer entries", {1024, 2048, 4096}},
      {"rob_size", "reorder buffer entries", range_values(32, 256, 16)},
      {"int_rf", "physical integer registers", range_values(64, 256, 8)},
      {"fp_rf", "physical floating-point registers", range_values(64, 256, 8)},
      {"iq_size", "instruction queue entries", range_values(16, 80, 8)},
      {"lq_size", "load queue entries", range_values(20, 48, 4)},
      {"sq_size", "store queue entries", range_values(20, 48, 4)},
      {"int_alu", "integer ALUs", range_values(3, 8, 1)},
      {"int_multdiv", "integer multipliers/dividers", range_values(1, 4, 1)},
      {"fp_alu", "floating-point ALUs", range_values(1, 4, 1)},
      {"fp_multdiv", "floating-point multipliers/dividers",
       range_values(1, 4, 1)},
      {"cacheline_bytes", "cache line size in bytes", {32, 64}},
      {"l1i_kb", "L1 instruction cache size in KB", {16, 32, 64}},
      {"l1i_assoc", "L1 instruction cache associativity", {2, 4}},
      {"l1d_kb", "L1 data cache size in KB", {16, 32, 64}},
      {"l1d_assoc", "L1 data cache associativity", {2, 4}},
      {"l2_kb", "L2 cache size in KB", {128, 256}},
      {"l2_assoc", "L2 cache associativity", {2, 4}},
  }};
  return space;
}

size_t DesignSpace::param_index(std::string_view name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return i;
  }
  throw std::out_of_range("DesignSpace: no parameter named '" +
                          std::string(name) + "'");
}

double DesignSpace::total_points() const {
  double p = 1.0;
  for (const auto& s : specs_) p *= static_cast<double>(s.cardinality());
  return p;
}

bool DesignSpace::valid(const Config& c) const {
  if (c.size() != specs_.size()) return false;
  for (size_t i = 0; i < c.size(); ++i) {
    if (c[i] >= specs_[i].cardinality()) return false;
  }
  return true;
}

void DesignSpace::validate(const Config& c) const {
  if (c.size() != specs_.size()) {
    throw std::invalid_argument(
        "Config: expected " + std::to_string(specs_.size()) +
        " parameters, got " + std::to_string(c.size()));
  }
  for (size_t i = 0; i < c.size(); ++i) {
    if (c[i] >= specs_[i].cardinality()) {
      throw std::invalid_argument("Config: parameter '" + specs_[i].name +
                                  "' index " + std::to_string(c[i]) +
                                  " out of range [0, " +
                                  std::to_string(specs_[i].cardinality()) +
                                  ")");
    }
  }
}

std::vector<double> DesignSpace::values_of(const Config& c) const {
  validate(c);
  std::vector<double> out(c.size());
  for (size_t i = 0; i < c.size(); ++i) out[i] = specs_[i].values[c[i]];
  return out;
}

std::vector<float> DesignSpace::normalize(const Config& c) const {
  validate(c);
  std::vector<float> out(c.size());
  for (size_t i = 0; i < c.size(); ++i) {
    const auto& vals = specs_[i].values;
    const double lo = vals.front();
    const double hi = vals.back();
    out[i] = hi > lo ? static_cast<float>((vals[c[i]] - lo) / (hi - lo)) : 0.0F;
  }
  return out;
}

uint64_t DesignSpace::encode(const Config& c) const {
  validate(c);
  uint64_t id = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    id = id * specs_[i].cardinality() + c[i];
  }
  return id;
}

Config DesignSpace::decode(uint64_t id) const {
  Config c(specs_.size());
  for (size_t i = specs_.size(); i-- > 0;) {
    const uint64_t card = specs_[i].cardinality();
    c[i] = static_cast<size_t>(id % card);
    id /= card;
  }
  if (id != 0) {
    throw std::out_of_range("DesignSpace::decode: id beyond space size");
  }
  return c;
}

Config DesignSpace::random_config(Rng& rng) const {
  Config c(specs_.size());
  for (size_t i = 0; i < specs_.size(); ++i) {
    c[i] = rng.uniform_index(specs_[i].cardinality());
  }
  return c;
}

std::vector<Config> DesignSpace::sample_uniform(size_t n, Rng& rng) const {
  std::vector<Config> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(random_config(rng));
  return out;
}

std::vector<Config> DesignSpace::sample_latin_hypercube(size_t n,
                                                        Rng& rng) const {
  std::vector<Config> out(n, Config(specs_.size()));
  for (size_t p = 0; p < specs_.size(); ++p) {
    const size_t card = specs_[p].cardinality();
    // Stratify [0, n) into n slots mapped onto the candidate range, then
    // shuffle the slot order so parameters are independent.
    std::vector<size_t> slots(n);
    for (size_t i = 0; i < n; ++i) {
      // slot i covers fraction [i/n, (i+1)/n): pick the middle.
      const double frac =
          (static_cast<double>(i) + 0.5) / static_cast<double>(n);
      slots[i] = std::min(card - 1,
                          static_cast<size_t>(frac * static_cast<double>(card)));
    }
    rng.shuffle(slots);
    for (size_t i = 0; i < n; ++i) out[i][p] = slots[i];
  }
  return out;
}

std::vector<Config> DesignSpace::sample_oa_foldover(size_t n, Rng& rng) const {
  std::vector<Config> out;
  out.reserve(n);
  const size_t P = specs_.size();
  size_t row = 0;
  while (out.size() < n) {
    // Two-level sign row from a pseudo-Hadamard pattern (bit-parity of
    // row&column), randomized by a per-row XOR mask.
    const uint64_t mask = rng.engine()();
    Config base(P);
    Config folded(P);
    for (size_t p = 0; p < P; ++p) {
      const size_t card = specs_[p].cardinality();
      const bool high =
          (std::popcount((row + 1) & (p + 1)) & 1U) ^ ((mask >> (p % 64)) & 1U);
      const size_t half = std::max<size_t>(1, card / 2);
      const size_t lo_pick = rng.uniform_index(half);
      const size_t hi_pick = card - 1 - rng.uniform_index(half);
      base[p] = high ? hi_pick : lo_pick;
      folded[p] = high ? lo_pick : hi_pick;  // the foldover mirror
    }
    out.push_back(std::move(base));
    if (out.size() < n) out.push_back(std::move(folded));
    ++row;
  }
  return out;
}

CpuConfig to_cpu_config(const DesignSpace& space, const Config& c) {
  const auto v = space.values_of(c);
  auto at = [&](const char* name) {
    return v[space.param_index(name)];
  };
  CpuConfig cfg;
  cfg.freq_ghz = at("core_freq_ghz");
  cfg.width = static_cast<int>(at("pipeline_width"));
  cfg.fetch_buffer_bytes = static_cast<int>(at("fetch_buffer_bytes"));
  cfg.fetch_queue_uops = static_cast<int>(at("fetch_queue_uops"));
  cfg.branch_predictor = at("branch_predictor") < 0.5
                             ? BranchPredictorType::kBiMode
                             : BranchPredictorType::kTournament;
  cfg.ras_size = static_cast<int>(at("ras_size"));
  cfg.btb_size = static_cast<int>(at("btb_size"));
  cfg.rob_size = static_cast<int>(at("rob_size"));
  cfg.int_rf = static_cast<int>(at("int_rf"));
  cfg.fp_rf = static_cast<int>(at("fp_rf"));
  cfg.iq_size = static_cast<int>(at("iq_size"));
  cfg.lq_size = static_cast<int>(at("lq_size"));
  cfg.sq_size = static_cast<int>(at("sq_size"));
  cfg.int_alu = static_cast<int>(at("int_alu"));
  cfg.int_multdiv = static_cast<int>(at("int_multdiv"));
  cfg.fp_alu = static_cast<int>(at("fp_alu"));
  cfg.fp_multdiv = static_cast<int>(at("fp_multdiv"));
  cfg.cacheline_bytes = static_cast<int>(at("cacheline_bytes"));
  cfg.l1i_kb = static_cast<int>(at("l1i_kb"));
  cfg.l1i_assoc = static_cast<int>(at("l1i_assoc"));
  cfg.l1d_kb = static_cast<int>(at("l1d_kb"));
  cfg.l1d_assoc = static_cast<int>(at("l1d_assoc"));
  cfg.l2_kb = static_cast<int>(at("l2_kb"));
  cfg.l2_assoc = static_cast<int>(at("l2_assoc"));
  return cfg;
}

}  // namespace metadse::arch
