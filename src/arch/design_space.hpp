// The explored microarchitecture design space (paper Table I): parameter
// specifications, configuration codecs, normalization for the surrogate
// model, and the samplers used by dataset generation and the OA-based
// baselines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/rng.hpp"

namespace metadse::arch {

using tensor::Rng;

/// Branch predictor candidates from Table I.
enum class BranchPredictorType { kBiMode = 0, kTournament = 1 };

/// One architectural parameter: a name and its ordered candidate values.
struct ParamSpec {
  std::string name;
  std::string description;
  std::vector<double> values;  ///< candidates in increasing order

  /// Number of candidate values.
  size_t cardinality() const { return values.size(); }
};

/// A design point: one candidate-value *index* per parameter, in the order of
/// DesignSpace::specs().
using Config = std::vector<size_t>;

/// The cartesian design space of the out-of-order core (paper Table I).
/// Ranges written "start:end:stride" in the paper are expanded inclusively.
class DesignSpace {
 public:
  /// Constructs a design space from explicit specs (each must have at least
  /// one candidate value).
  explicit DesignSpace(std::vector<ParamSpec> specs);

  /// The 24-parameter MetaDSE space of Table I (split load/store queues and
  /// mirrored L1I/L1D, matching the gem5 configuration the paper extends).
  static const DesignSpace& table1();

  size_t num_params() const { return specs_.size(); }
  const std::vector<ParamSpec>& specs() const { return specs_; }
  const ParamSpec& spec(size_t i) const { return specs_.at(i); }

  /// Index of the parameter named @p name; throws std::out_of_range if absent.
  size_t param_index(std::string_view name) const;

  /// |space| as a double (the exact count may exceed 2^53 only for much
  /// larger spaces; Table I fits in 64 bits — see encode()).
  double total_points() const;

  // -- configuration handling ------------------------------------------------

  /// True iff @p c has one in-range index per parameter.
  bool valid(const Config& c) const;
  /// Throws std::invalid_argument with a precise message when invalid.
  void validate(const Config& c) const;

  /// Candidate values selected by @p c.
  std::vector<double> values_of(const Config& c) const;

  /// Min-max normalized feature vector in [0,1]^num_params — the surrogate
  /// model input encoding. Parameters with a single candidate map to 0.
  std::vector<float> normalize(const Config& c) const;

  /// Mixed-radix linearization of @p c (unique per design point).
  uint64_t encode(const Config& c) const;
  /// Inverse of encode(); throws std::out_of_range for ids beyond the space.
  Config decode(uint64_t id) const;

  // -- samplers ---------------------------------------------------------------

  /// One uniform random design point.
  Config random_config(Rng& rng) const;
  /// @p n i.i.d. uniform design points.
  std::vector<Config> sample_uniform(size_t n, Rng& rng) const;
  /// Latin-hypercube-style sampling: per-parameter stratified value indices
  /// with independent random permutations (better marginal coverage).
  std::vector<Config> sample_latin_hypercube(size_t n, Rng& rng) const;
  /// Orthogonal-array-inspired two-level sampling with foldover (the design
  /// TrEE [14] uses): base rows pick low/high halves per parameter via a
  /// Hadamard-like sign pattern; each row is mirrored (folded) to cancel
  /// main-effect aliasing; values are drawn from the selected half.
  std::vector<Config> sample_oa_foldover(size_t n, Rng& rng) const;

 private:
  std::vector<ParamSpec> specs_;
};

/// Strongly typed view of a Table I design point, consumed by the simulator.
struct CpuConfig {
  double freq_ghz = 2.0;
  int width = 4;              ///< fetch/decode/rename/dispatch/issue/commit
  int fetch_buffer_bytes = 32;
  int fetch_queue_uops = 16;
  BranchPredictorType branch_predictor = BranchPredictorType::kBiMode;
  int ras_size = 16;
  int btb_size = 2048;
  int rob_size = 128;
  int int_rf = 128;
  int fp_rf = 128;
  int iq_size = 32;
  int lq_size = 32;
  int sq_size = 32;
  int int_alu = 4;
  int int_multdiv = 1;
  int fp_alu = 2;
  int fp_multdiv = 1;
  int cacheline_bytes = 64;
  int l1i_kb = 32;
  int l1i_assoc = 2;
  int l1d_kb = 32;
  int l1d_assoc = 2;
  int l2_kb = 256;
  int l2_assoc = 4;
};

/// Decodes a Table I Config into the typed CpuConfig (validates first).
CpuConfig to_cpu_config(const DesignSpace& space, const Config& c);

}  // namespace metadse::arch
