// ASCII rendering of benchmark results: aligned tables (paper Tables II/III)
// and shaded heatmaps (paper Fig. 2).
#pragma once

#include <string>
#include <vector>

namespace metadse::eval {

/// A simple column-aligned text table.
class TextTable {
 public:
  /// Sets the header row (fixes the column count).
  explicit TextTable(std::vector<std::string> header);

  /// Appends one row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Renders with column alignment and a header separator.
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a labelled matrix as an ASCII heatmap: each cell is shaded by a
/// character ramp (darker = larger), plus the numeric value.
std::string render_heatmap(const std::vector<std::string>& labels,
                           const std::vector<std::vector<double>>& matrix,
                           int precision = 2);

/// Formats a double with fixed precision.
std::string fmt(double v, int precision = 4);

}  // namespace metadse::eval
