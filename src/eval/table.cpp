#include "eval/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace metadse::eval {

TextTable::TextTable(std::vector<std::string> header) {
  if (header.empty()) throw std::invalid_argument("TextTable: empty header");
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != rows_.front().size()) {
    throw std::invalid_argument("TextTable: column count mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  const size_t cols = rows_.front().size();
  std::vector<size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (size_t c = 0; c < cols; ++c) width[c] = std::max(width[c], r[c].size());
  }
  std::ostringstream os;
  for (size_t ri = 0; ri < rows_.size(); ++ri) {
    for (size_t c = 0; c < cols; ++c) {
      os << (c == 0 ? "| " : " | ");
      os << rows_[ri][c];
      os << std::string(width[c] - rows_[ri][c].size(), ' ');
    }
    os << " |\n";
    if (ri == 0) {
      for (size_t c = 0; c < cols; ++c) {
        os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
      }
      os << "-|\n";
    }
  }
  return os.str();
}

std::string render_heatmap(const std::vector<std::string>& labels,
                           const std::vector<std::vector<double>>& matrix,
                           int precision) {
  if (labels.size() != matrix.size()) {
    throw std::invalid_argument("render_heatmap: label/matrix size mismatch");
  }
  double lo = 1e300;
  double hi = -1e300;
  for (const auto& row : matrix) {
    if (row.size() != labels.size()) {
      throw std::invalid_argument("render_heatmap: matrix must be square");
    }
    for (double v : row) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const std::string ramp = " .:-=+*#%@";  // light -> dark
  auto shade = [&](double v) {
    const double t = hi > lo ? (v - lo) / (hi - lo) : 0.0;
    const size_t i = std::min(ramp.size() - 1,
                              static_cast<size_t>(t * static_cast<double>(
                                                          ramp.size())));
    return ramp[i];
  };
  size_t lw = 0;
  for (const auto& l : labels) lw = std::max(lw, l.size());
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  for (size_t r = 0; r < matrix.size(); ++r) {
    os << labels[r] << std::string(lw - labels[r].size(), ' ') << " |";
    for (size_t c = 0; c < matrix.size(); ++c) {
      os << ' ' << shade(matrix[r][c]) << shade(matrix[r][c]);
    }
    os << " |";
    for (size_t c = 0; c < matrix.size(); ++c) os << ' ' << matrix[r][c];
    os << '\n';
  }
  return os.str();
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

}  // namespace metadse::eval
