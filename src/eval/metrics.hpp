// Evaluation metrics from the paper (§V, Eq. 1-3): RMSE, MAPE, Explained
// Variance — plus aggregation helpers (geometric mean, mean ± 95% CI) and
// the 1-D Wasserstein distance used for workload similarity (Fig. 2 and
// the TrEnDSE baseline).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace metadse::eval {

/// Root mean squared error (Eq. 1). Sizes must match and be non-empty.
double rmse(std::span<const float> actual, std::span<const float> predicted);

/// Mean absolute percentage error (Eq. 2), reported as a fraction (the paper
/// scales by 100; Table II values are fractions of that form). Entries of
/// @p actual equal to zero are guarded with a small epsilon.
double mape(std::span<const float> actual, std::span<const float> predicted);

/// Explained variance (Eq. 3): 1 - SS_res / SS_tot. Returns 1 when actuals
/// are constant and predictions are exact; -inf is clamped to a large
/// negative value for constant actuals with wrong predictions.
double explained_variance(std::span<const float> actual,
                          std::span<const float> predicted);

/// Geometric mean of positive values.
double geomean(std::span<const double> values);

/// Sample mean and half-width of the normal-approximation 95% confidence
/// interval (1.96 * sd / sqrt(n)).
struct MeanCi {
  double mean = 0.0;
  double ci95 = 0.0;
  size_t n = 0;
};
MeanCi mean_ci(std::span<const double> values);

/// 1-D Wasserstein-1 distance between two empirical distributions (equal
/// weights): the L1 distance between sorted samples / quantile functions.
double wasserstein1(std::span<const float> a, std::span<const float> b);

/// Spearman rank correlation with average ranks for ties. Sizes must match;
/// returns 1 for fewer than two points or when either side is constant with
/// the other (degenerate variance is treated as perfectly concordant only
/// when both sides are constant, else 0). Used by the quantization error
/// contract (DESIGN.md §15): DSE cares about the *ordering* of predicted
/// IPC across candidate designs, so rank correlation — not bitwise equality
/// — is the fidelity bar for reduced-precision serving.
double spearman_rho(std::span<const float> a, std::span<const float> b);

/// Formats "m±c" with the given precision (Table II style).
std::string format_mean_ci(const MeanCi& mc, int precision = 4);

}  // namespace metadse::eval
