#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace metadse::eval {

namespace {
void check_pair(std::span<const float> a, std::span<const float> b,
                const char* fn) {
  if (a.empty() || a.size() != b.size()) {
    throw std::invalid_argument(std::string(fn) +
                                ": size mismatch or empty input");
  }
}
}  // namespace

double rmse(std::span<const float> actual, std::span<const float> predicted) {
  check_pair(actual, predicted, "rmse");
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double d = static_cast<double>(actual[i]) - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(actual.size()));
}

double mape(std::span<const float> actual, std::span<const float> predicted) {
  check_pair(actual, predicted, "mape");
  double s = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::max(1e-6, std::fabs(static_cast<double>(actual[i])));
    s += std::fabs(static_cast<double>(actual[i]) - predicted[i]) / denom;
  }
  return s / static_cast<double>(actual.size());
}

double explained_variance(std::span<const float> actual,
                          std::span<const float> predicted) {
  check_pair(actual, predicted, "explained_variance");
  double mean = 0.0;
  for (float v : actual) mean += v;
  mean /= static_cast<double>(actual.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    const double r = static_cast<double>(actual[i]) - predicted[i];
    const double t = static_cast<double>(actual[i]) - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot < 1e-12) return ss_res < 1e-12 ? 1.0 : -1e9;
  return 1.0 - ss_res / ss_tot;
}

double geomean(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("geomean: empty input");
  double log_sum = 0.0;
  for (double v : values) {
    if (v <= 0.0) throw std::invalid_argument("geomean: non-positive value");
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

MeanCi mean_ci(std::span<const double> values) {
  if (values.empty()) throw std::invalid_argument("mean_ci: empty input");
  MeanCi mc;
  mc.n = values.size();
  for (double v : values) mc.mean += v;
  mc.mean /= static_cast<double>(mc.n);
  if (mc.n == 1) return mc;
  double var = 0.0;
  for (double v : values) var += (v - mc.mean) * (v - mc.mean);
  var /= static_cast<double>(mc.n - 1);
  mc.ci95 = 1.96 * std::sqrt(var / static_cast<double>(mc.n));
  return mc;
}

double wasserstein1(std::span<const float> a, std::span<const float> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("wasserstein1: empty input");
  }
  std::vector<float> sa(a.begin(), a.end());
  std::vector<float> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  // Integrate |F_a^{-1}(q) - F_b^{-1}(q)| over quantiles on a common grid.
  const size_t grid = std::max(sa.size(), sb.size());
  auto quantile = [](const std::vector<float>& v, double q) {
    const double pos = q * static_cast<double>(v.size() - 1);
    const size_t lo = static_cast<size_t>(pos);
    const size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return (1.0 - frac) * v[lo] + frac * v[hi];
  };
  double s = 0.0;
  for (size_t i = 0; i < grid; ++i) {
    const double q =
        (static_cast<double>(i) + 0.5) / static_cast<double>(grid);
    s += std::fabs(quantile(sa, q) - quantile(sb, q));
  }
  return s / static_cast<double>(grid);
}

namespace {

/// Average ranks (1-based; ties share the mean of their rank range).
std::vector<double> avg_ranks(std::span<const float> v) {
  const size_t n = v.size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return v[i] < v[j]; });
  std::vector<double> ranks(n);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double r = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                     1.0;  // mean of 1-based ranks i+1..j+1
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = r;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_rho(std::span<const float> a, std::span<const float> b) {
  check_pair(a, b, "spearman_rho");
  const size_t n = a.size();
  if (n < 2) return 1.0;
  const std::vector<double> ra = avg_ranks(a);
  const std::vector<double> rb = avg_ranks(b);
  double ma = 0.0;
  double mb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0.0;
  double va = 0.0;
  double vb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va < 1e-12 || vb < 1e-12) {
    return (va < 1e-12 && vb < 1e-12) ? 1.0 : 0.0;
  }
  return cov / std::sqrt(va * vb);
}

std::string format_mean_ci(const MeanCi& mc, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mc.mean << "±" << mc.ci95;
  return os.str();
}

}  // namespace metadse::eval
