// Set-associative cache with true LRU replacement — the storage structure
// used by the trace-driven pipeline simulator (L1I, L1D, L2). Unlike the
// analytical miss-curve in cpu_model.cpp, this models an actual address
// stream, so conflict and spatial effects emerge instead of being assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace metadse::sim {

/// A single-level set-associative LRU cache (tags only; no data payload).
class SetAssocCache {
 public:
  /// @p size_bytes and @p line_bytes must be powers-of-two-ish positive
  /// values with size_bytes >= assoc * line_bytes.
  SetAssocCache(size_t size_bytes, size_t assoc, size_t line_bytes);

  /// Accesses @p address: returns true on hit. On miss the line is filled
  /// (allocate-on-miss; writes behave like reads for tag purposes).
  bool access(uint64_t address);

  /// True iff @p address is currently resident (no LRU update).
  bool probe(uint64_t address) const;

  /// Invalidates all lines.
  void flush();

  size_t sets() const { return sets_; }
  size_t assoc() const { return assoc_; }
  size_t line_bytes() const { return line_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Miss ratio over all accesses so far (0 when untouched).
  double miss_rate() const;

 private:
  struct Way {
    uint64_t tag = 0;
    uint64_t lru = 0;  ///< last-access stamp
    bool valid = false;
  };

  size_t set_index(uint64_t address) const;
  uint64_t tag_of(uint64_t address) const;

  size_t sets_;
  size_t assoc_;
  size_t line_;
  uint64_t stamp_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  std::vector<Way> ways_;  ///< sets_ * assoc_, row-major by set
};

}  // namespace metadse::sim
