#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace metadse::sim {

TraceGenerator::TraceGenerator(const WorkloadCharacteristics& wl) : wl_(wl) {
  wl_.validate();
}

std::vector<TraceInstr> TraceGenerator::generate(size_t n,
                                                 tensor::Rng& rng) const {
  if (n == 0) throw std::invalid_argument("TraceGenerator: n must be > 0");
  std::vector<TraceInstr> trace;
  trace.reserve(n);

  // --- code layout -----------------------------------------------------------
  // Instructions live in a code region sized by the instruction footprint;
  // control flow hops between basic blocks inside it.
  const uint64_t code_bytes =
      std::max<uint64_t>(1024, static_cast<uint64_t>(wl_.icache_ws_kb * 1024));
  const uint64_t n_blocks = std::max<uint64_t>(4, code_bytes / 64);
  uint64_t pc = 0x1000;
  uint64_t block_base = 0x1000;

  // --- data layout ---------------------------------------------------------------
  const uint64_t heap_base = 0x1000'0000;
  const uint64_t hot_bytes =
      std::max<uint64_t>(512, static_cast<uint64_t>(wl_.dcache_ws_kb * 1024));
  const uint64_t cold_bytes = std::max<uint64_t>(
      hot_bytes * 2, static_cast<uint64_t>(wl_.dcache_ws2_kb * 1024));
  uint64_t stream_ptr = heap_base + cold_bytes;  // streaming region

  // --- branch population ---------------------------------------------------------
  // A fixed population of branch sites; per-site taken bias realizes the
  // workload's branch entropy (bias near 0/1 = predictable).
  const size_t n_branch_sites = std::max<size_t>(
      8, static_cast<size_t>(wl_.btb_footprint));
  struct BranchSite {
    bool looping;       ///< loop-exit branch (periodic pattern) vs biased
    double bias;        ///< P(taken) for biased sites
    uint32_t period;    ///< loop trip count for looping sites
    uint32_t counter = 0;
    uint64_t target;    ///< static taken-target block
  };
  std::unordered_map<uint64_t, BranchSite> sites;

  // --- call stack (for call/return pairs) --------------------------------------------
  std::vector<uint64_t> call_stack;

  const double p_dep_serial = wl_.dep_chain;
  const double mean_dep = std::max(1.5, 2.0 * wl_.ilp);

  auto sample_dep = [&](size_t i) -> uint32_t {
    if (i == 0) return 0;
    // Geometric-ish distance with mean ~mean_dep; serial chains pin to 1.
    if (rng.uniform() < p_dep_serial) return 1;
    const double u = std::max(1e-6F, rng.uniform());
    const uint32_t d =
        1 + static_cast<uint32_t>(-std::log(u) * (mean_dep - 1.0));
    return std::min<uint32_t>(d, static_cast<uint32_t>(i));
  };

  for (size_t i = 0; i < n; ++i) {
    TraceInstr ins;
    ins.pc = pc;
    ins.dep1 = sample_dep(i);
    ins.dep2 = rng.uniform() < 0.35 ? sample_dep(i) : 0;

    // Sample the op class from the mix.
    const double u = rng.uniform();
    double acc = wl_.f_int_alu;
    if (u < acc) {
      ins.op = OpClass::kIntAlu;
    } else if (u < (acc += wl_.f_int_mul)) {
      ins.op = OpClass::kIntMul;
    } else if (u < (acc += wl_.f_fp_alu)) {
      ins.op = OpClass::kFpAlu;
    } else if (u < (acc += wl_.f_fp_mul)) {
      ins.op = OpClass::kFpMul;
    } else if (u < (acc += wl_.f_load)) {
      ins.op = OpClass::kLoad;
    } else if (u < (acc += wl_.f_store)) {
      ins.op = OpClass::kStore;
    } else {
      ins.op = OpClass::kBranch;
    }

    if (ins.op == OpClass::kLoad || ins.op == OpClass::kStore) {
      if (rng.uniform() < wl_.streaming) {
        // Streaming: sequential walk through the cold region.
        stream_ptr += 8;
        if (stream_ptr >= heap_base + 2 * cold_bytes) {
          stream_ptr = heap_base + cold_bytes;
        }
        ins.mem_addr = stream_ptr;
      } else if (rng.uniform() < 0.8) {
        // Hot working set, with reuse skew: real programs touch a small
        // fraction of the working set most of the time (r^3 concentrates
        // accesses toward the base of the region).
        const double r = rng.uniform();
        ins.mem_addr =
            heap_base +
            static_cast<uint64_t>(r * r * r * static_cast<double>(hot_bytes)) /
                8 * 8;
      } else {
        // Secondary working set (mildly skewed).
        const double r = rng.uniform();
        ins.mem_addr =
            heap_base +
            static_cast<uint64_t>(r * r * static_cast<double>(cold_bytes)) /
                8 * 8;
      }
    }

    if (ins.op == OpClass::kBranch) {
      const bool is_ret = !call_stack.empty() &&
                          rng.uniform() < wl_.indirect_frac * 0.5;
      const bool is_call =
          !is_ret && rng.uniform() < wl_.indirect_frac * 0.5 &&
          call_stack.size() < 4 * static_cast<size_t>(wl_.call_depth);
      if (is_ret) {
        ins.is_return = true;
        ins.taken = true;
        ins.branch_target = call_stack.back();
        call_stack.pop_back();
      } else if (is_call) {
        ins.is_call = true;
        ins.taken = true;
        // Call a random block; return address is the next pc.
        const uint64_t callee =
            0x1000 + (rng.engine()() % n_blocks) * 64;
        ins.branch_target = callee;
        call_stack.push_back(pc + 4);
      } else {
        // Conditional branch at a persistent site.
        const uint64_t site_pc =
            0x1000 + (rng.engine()() % n_branch_sites) * 16;
        ins.pc = site_pc;
        auto [it, inserted] = sites.try_emplace(site_pc);
        if (inserted) {
          // ~40% of sites are loop back-edges with a periodic pattern
          // (history predictors learn these; plain counters cannot); the
          // rest are data-dependent biased branches whose bias realizes the
          // workload's entropy (entropy 0 -> deterministic, 1 -> coin).
          it->second.looping = rng.uniform() < 0.4;
          const double flip = 0.5 * wl_.branch_entropy;
          it->second.bias = rng.uniform() < 0.5 ? flip : 1.0 - flip;
          it->second.period = 2 + static_cast<uint32_t>(rng.uniform_index(7));
          it->second.target = 0x1000 + (rng.engine()() % n_blocks) * 64;
        }
        if (it->second.looping) {
          // Taken (period-1) times, then one not-taken (loop exit).
          ins.taken = ++it->second.counter % it->second.period != 0;
        } else {
          ins.taken = rng.uniform() < it->second.bias;
        }
        ins.branch_target = it->second.target;
      }
      if (ins.taken) {
        block_base = ins.branch_target;
        pc = block_base;
        trace.push_back(ins);
        continue;
      }
    }

    pc += 4;
    // Fall off the end of a basic block occasionally even without branches
    // (keeps the PC stream inside the code footprint).
    if (pc >= block_base + 256) {
      block_base = 0x1000 + (rng.engine()() % n_blocks) * 64;
      pc = block_base;
    }
    trace.push_back(ins);
  }
  return trace;
}

}  // namespace metadse::sim
