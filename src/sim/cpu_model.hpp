// The gem5 substitute: an interval-analysis analytical model of an
// out-of-order core (in the style of Karkhanis & Smith / Eyerman et al.).
// Deterministic map (CpuConfig, WorkloadCharacteristics) -> IPC + event rates.
//
// The model captures the mechanisms a cycle-level simulator exposes to DSE:
//   * front-end bandwidth (width, fetch buffer/queue, I-cache misses),
//   * window-limited ILP (ROB / IQ / physical RF / LQ-SQ occupancy),
//   * functional-unit throughput ceilings per instruction class,
//   * branch mispredictions (predictor type, entropy, BTB and RAS capacity),
//   * the two-level cache hierarchy with MLP-overlapped miss stalls, and
//   * frequency <-> memory-latency coupling.
#pragma once

#include "arch/design_space.hpp"
#include "sim/workload_characteristics.hpp"

namespace metadse::sim {

/// Event rates and the performance outcome of one simulation, per
/// 1000 instructions where applicable (the power model's activity inputs).
struct SimStats {
  double ipc = 0.0;            ///< retired instructions per cycle
  double branch_mpki = 0.0;    ///< branch mispredictions / kilo-instruction
  double l1d_mpki = 0.0;       ///< L1D misses / kilo-instruction
  double l2_mpki = 0.0;        ///< L2 misses (to DRAM) / kilo-instruction
  double l1i_mpki = 0.0;       ///< L1I misses / kilo-instruction
  double effective_window = 0.0;  ///< instructions the window sustains
  double frontend_ipc = 0.0;   ///< front-end bandwidth bound
  double window_ipc = 0.0;     ///< window/ILP bound
  double fu_ipc = 0.0;         ///< functional-unit throughput bound
  double base_cpi = 0.0;       ///< 1 / min(bounds)
  double branch_cpi = 0.0;     ///< misprediction stall component
  double memory_cpi = 0.0;     ///< data-miss stall component
  double icache_cpi = 0.0;     ///< instruction-miss stall component
};

/// Analytical out-of-order CPU performance model.
class CpuModel {
 public:
  /// Memory timing assumptions (wall-clock; converted to cycles by freq).
  struct MemoryTiming {
    double l2_ns = 5.0;     ///< L2 hit latency
    double dram_ns = 60.0;  ///< DRAM access latency
  };

  CpuModel() = default;
  explicit CpuModel(MemoryTiming timing) : timing_(timing) {}

  /// Runs the analytical model; validates both inputs.
  SimStats simulate(const arch::CpuConfig& cfg,
                    const WorkloadCharacteristics& wl) const;

  const MemoryTiming& timing() const { return timing_; }

 private:
  MemoryTiming timing_{};
};

/// Validates @p cfg against physical constraints (positive sizes, etc.).
/// Throws std::invalid_argument on violation.
void validate_cpu_config(const arch::CpuConfig& cfg);

}  // namespace metadse::sim
