// Branch prediction structures for the trace-driven pipeline simulator:
// the two candidate predictors of Table I (BiModeBP, TournamentBP) plus the
// BTB and the return address stack. These are real table-based predictors —
// accuracy emerges from the branch stream rather than being assumed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace metadse::sim {

/// 2-bit saturating counter helper.
class SaturatingCounter {
 public:
  explicit SaturatingCounter(uint8_t init = 1) : v_(init) {}
  bool taken() const { return v_ >= 2; }
  void update(bool taken) {
    if (taken && v_ < 3) ++v_;
    if (!taken && v_ > 0) --v_;
  }

 private:
  uint8_t v_;
};

/// Direction predictor interface.
class DirectionPredictor {
 public:
  virtual ~DirectionPredictor() = default;
  /// Predicts the direction of the branch at @p pc.
  virtual bool predict(uint64_t pc) = 0;
  /// Trains with the resolved direction.
  virtual void update(uint64_t pc, bool taken) = 0;
};

/// Bi-Mode predictor (Lee et al.): two pattern-history tables (taken-biased
/// and not-taken-biased) selected by a per-PC choice table; both PHTs are
/// indexed by PC xor global history.
class BiModePredictor : public DirectionPredictor {
 public:
  explicit BiModePredictor(size_t table_bits = 12, size_t history_bits = 12);
  bool predict(uint64_t pc) override;
  void update(uint64_t pc, bool taken) override;

 private:
  size_t mask_;
  size_t hist_mask_;
  uint64_t history_ = 0;
  std::vector<SaturatingCounter> choice_;
  std::vector<SaturatingCounter> taken_pht_;
  std::vector<SaturatingCounter> not_taken_pht_;
};

/// Tournament predictor (Alpha 21264 style): a local predictor (per-PC
/// history into a local PHT), a global predictor (global history into a
/// PHT), and a chooser trained toward whichever component was right.
class TournamentPredictor : public DirectionPredictor {
 public:
  explicit TournamentPredictor(size_t table_bits = 12,
                               size_t local_hist_bits = 10);
  bool predict(uint64_t pc) override;
  void update(uint64_t pc, bool taken) override;

 private:
  size_t mask_;
  size_t local_mask_;
  uint64_t global_history_ = 0;
  std::vector<uint16_t> local_history_;
  std::vector<SaturatingCounter> local_pht_;
  std::vector<SaturatingCounter> global_pht_;
  std::vector<SaturatingCounter> chooser_;
};

/// Branch target buffer: direct-mapped tag/target store. A taken branch
/// whose target misses the BTB costs a fetch redirect.
class Btb {
 public:
  explicit Btb(size_t entries);
  /// Returns true and sets @p target on hit.
  bool lookup(uint64_t pc, uint64_t& target) const;
  void update(uint64_t pc, uint64_t target);
  size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    uint64_t tag = 0;
    uint64_t target = 0;
    bool valid = false;
  };
  std::vector<Entry> entries_;
};

/// Return address stack with wrap-around overwrite (as in real cores: an
/// overflowing call depth silently corrupts the oldest entries).
class ReturnAddressStack {
 public:
  explicit ReturnAddressStack(size_t depth);
  void push(uint64_t return_address);
  /// Pops the predicted return address; returns 0 when empty/corrupted.
  uint64_t pop();
  size_t depth() const { return stack_.size(); }
  size_t live() const { return live_; }

 private:
  std::vector<uint64_t> stack_;
  size_t top_ = 0;
  size_t live_ = 0;
};

/// Factory matching Table I's predictor candidates.
std::unique_ptr<DirectionPredictor> make_predictor(bool tournament);

}  // namespace metadse::sim
