// Injectable failure substrate for the simulator layer. Real gem5/McPAT
// label farms fail, hang, and occasionally emit garbage; this wrapper lets
// dataset generation reproduce those modes deterministically so the retry /
// quarantine machinery (and everything training on the surviving labels)
// can be exercised under test instead of discovered in production.
//
// Fault decisions are a pure function of (plan seed, design-point key,
// attempt index): re-evaluating the same point with the same plan gives the
// same outcome, a retry is a *different* draw (transient faults can clear),
// and a point marked persistent fails on every attempt.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace metadse::sim {

/// A simulated evaluation that failed outright (crash, malformed output).
class SimulationFailure : public std::runtime_error {
 public:
  explicit SimulationFailure(const std::string& what)
      : std::runtime_error(what) {}
};

/// A simulated evaluation that exceeded its time budget.
class SimulationTimeout : public SimulationFailure {
 public:
  explicit SimulationTimeout(const std::string& what)
      : SimulationFailure(what) {}
};

/// What the injector decided for one (point, attempt) pair.
enum class FaultOutcome {
  kOk,        ///< pass the real simulator result through
  kFail,      ///< throw SimulationFailure
  kTimeout,   ///< throw SimulationTimeout
  kNanLabel,  ///< replace labels with NaN
  kGarbage,   ///< replace labels with wild-but-finite garbage
};

/// Seeded description of how unreliable the simulated label farm is.
/// Rates are independent probabilities per evaluation attempt, applied in
/// the order fail > timeout > nan > garbage.
struct FaultPlan {
  double fail_rate = 0.0;     ///< P(SimulationFailure) per attempt
  double timeout_rate = 0.0;  ///< P(SimulationTimeout) per attempt
  double nan_rate = 0.0;      ///< P(NaN labels) per attempt
  double garbage_rate = 0.0;  ///< P(garbage labels) per attempt
  /// Fraction of fail/timeout-hit points that fail *persistently* (every
  /// retry fails too, as a broken config or corrupt binary would).
  double persistent_fraction = 0.0;
  uint64_t seed = 0xFA17ULL;

  bool enabled() const {
    return fail_rate > 0.0 || timeout_rate > 0.0 || nan_rate > 0.0 ||
           garbage_rate > 0.0;
  }
};

/// Deterministic fault oracle for a FaultPlan. Stateless between calls:
/// everything is derived by hashing (seed, key, attempt).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// Stable key for a design point (hash of its candidate-value indices).
  static uint64_t point_key(const std::vector<size_t>& config);

  /// The outcome for evaluation attempt @p attempt (0-based) of the point
  /// identified by @p key.
  FaultOutcome outcome(uint64_t key, size_t attempt) const;

  /// True when the point is in the persistently-failing population: all
  /// attempts that draw a fail/timeout keep failing.
  bool persistent(uint64_t key) const;

  /// Corrupted (ipc, power) labels for kNanLabel / kGarbage outcomes.
  /// Garbage is finite but far outside the physical range, deterministic
  /// per (key, attempt).
  std::pair<double, double> corrupt_labels(FaultOutcome o, uint64_t key,
                                           size_t attempt) const;

 private:
  /// Uniform double in [0,1) from a (key, attempt, stream) triple.
  double draw(uint64_t key, uint64_t attempt, uint64_t stream) const;

  FaultPlan plan_;
};

}  // namespace metadse::sim
