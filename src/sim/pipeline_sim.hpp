// Trace-driven out-of-order pipeline simulator — the higher-fidelity gem5
// substitute. Executes a synthetic instruction trace against *structural*
// models (set-associative caches, real BiMode/Tournament predictors, BTB,
// RAS) using a one-pass window-scheduling algorithm: per-instruction
// fetch/dispatch/issue/complete/commit cycles subject to pipeline width,
// ROB/IQ/LQ/SQ occupancy, physical-register headroom, functional-unit
// contention, cache-miss latencies, and branch-misprediction redirects.
//
// Used to cross-validate the analytical CpuModel (they must rank design
// points consistently) and available as an alternative dataset backend.
#pragma once

#include "arch/design_space.hpp"
#include "sim/branch_predictor.hpp"
#include "sim/cache.hpp"
#include "sim/cpu_model.hpp"
#include "sim/trace.hpp"

namespace metadse::sim {

/// Outcome of a trace-driven simulation (superset of the analytical stats'
/// roles; mpki values are measured, not modelled).
struct PipelineStats {
  double ipc = 0.0;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  double branch_mpki = 0.0;
  double l1d_mpki = 0.0;
  double l2_mpki = 0.0;
  double l1i_mpki = 0.0;
  double btb_mpki = 0.0;         ///< taken branches missing the BTB
  double predictor_accuracy = 0.0;  ///< direction-prediction hit rate
};

/// Trace-driven OoO core model configured from a Table I design point.
class PipelineSimulator {
 public:
  /// Latency assumptions (cycles, except memory which is wall-clock-derived
  /// like the analytical model: cycles = ns * freq_ghz).
  struct Latencies {
    int l1_hit = 3;
    double l2_ns = 5.0;
    double dram_ns = 60.0;
    int int_alu = 1;
    int int_mul = 3;
    int fp_alu = 3;
    int fp_mul = 5;
    int frontend_depth = 5;  ///< fetch-to-dispatch stages
  };

  explicit PipelineSimulator(const arch::CpuConfig& cfg);
  PipelineSimulator(const arch::CpuConfig& cfg, Latencies lat);

  /// Runs the trace and returns statistics measured *after* a warmup
  /// prefix (default: the first 1/8 of the trace) — standard trace-driven
  /// methodology so cold-start compulsory misses don't dominate short
  /// traces. Pass warmup_fraction = 0 to measure everything.
  PipelineStats run(const std::vector<TraceInstr>& trace,
                    double warmup_fraction = 0.125);

  const arch::CpuConfig& config() const { return cfg_; }

 private:
  arch::CpuConfig cfg_;
  Latencies lat_;
};

/// Convenience: generate a trace for @p wl and simulate it on @p cfg.
PipelineStats simulate_trace(const arch::CpuConfig& cfg,
                             const WorkloadCharacteristics& wl,
                             size_t n_instructions, uint64_t seed);

}  // namespace metadse::sim
