#include "sim/fault_injection.hpp"

#include <limits>

namespace metadse::sim {

namespace {

/// splitmix64 finalizer — cheap, well-mixed, and stable across platforms.
uint64_t mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {
  auto check01 = [](double r, const char* name) {
    if (r < 0.0 || r > 1.0) {
      throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                  " must be in [0,1]");
    }
  };
  check01(plan_.fail_rate, "fail_rate");
  check01(plan_.timeout_rate, "timeout_rate");
  check01(plan_.nan_rate, "nan_rate");
  check01(plan_.garbage_rate, "garbage_rate");
  check01(plan_.persistent_fraction, "persistent_fraction");
}

uint64_t FaultInjector::point_key(const std::vector<size_t>& config) {
  uint64_t h = 0x243F6A8885A308D3ULL;  // pi digits: fixed, seed-independent
  for (size_t v : config) h = mix64(h ^ static_cast<uint64_t>(v));
  return h;
}

double FaultInjector::draw(uint64_t key, uint64_t attempt,
                           uint64_t stream) const {
  const uint64_t h =
      mix64(mix64(mix64(plan_.seed ^ key) ^ attempt) ^ stream);
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::persistent(uint64_t key) const {
  // Attempt-independent draw: membership in the persistent population is a
  // property of the point, not of the retry.
  return draw(key, 0, 0xBADC0DEULL) < plan_.persistent_fraction;
}

FaultOutcome FaultInjector::outcome(uint64_t key, size_t attempt) const {
  if (!plan_.enabled()) return FaultOutcome::kOk;
  // Persistent points replay attempt 0's hard-failure draw forever.
  const uint64_t a = persistent(key) ? 0 : static_cast<uint64_t>(attempt);
  double u = draw(key, a, 1);
  if (u < plan_.fail_rate) return FaultOutcome::kFail;
  u -= plan_.fail_rate;
  if (u < plan_.timeout_rate) return FaultOutcome::kTimeout;
  // Label corruption is transient by nature (a bad parse, a flipped bit in
  // one stats dump), so it always redraws per attempt.
  double v = draw(key, static_cast<uint64_t>(attempt), 2);
  if (v < plan_.nan_rate) return FaultOutcome::kNanLabel;
  v -= plan_.nan_rate;
  if (v < plan_.garbage_rate) return FaultOutcome::kGarbage;
  return FaultOutcome::kOk;
}

std::pair<double, double> FaultInjector::corrupt_labels(FaultOutcome o,
                                                        uint64_t key,
                                                        size_t attempt) const {
  if (o == FaultOutcome::kNanLabel) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan};
  }
  if (o == FaultOutcome::kGarbage) {
    // Wild but finite: orders of magnitude outside any physical IPC/power.
    const double a = draw(key, attempt, 3);
    const double b = draw(key, attempt, 4);
    return {1e6 * (a - 0.5), 1e9 * (b - 0.5)};
  }
  throw std::logic_error("corrupt_labels: outcome is not a corruption");
}

}  // namespace metadse::sim
