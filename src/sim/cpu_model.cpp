#include "sim/cpu_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace metadse::sim {

void WorkloadCharacteristics::validate() const {
  const double mix = f_int_alu + f_int_mul + f_fp_alu + f_fp_mul + f_load +
                     f_store + f_branch;
  if (std::fabs(mix - 1.0) > 1e-6) {
    throw std::invalid_argument(
        "WorkloadCharacteristics: instruction mix sums to " +
        std::to_string(mix) + ", expected 1.0");
  }
  auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (!in01(branch_entropy) || !in01(indirect_frac) || !in01(streaming) ||
      !in01(dep_chain)) {
    throw std::invalid_argument(
        "WorkloadCharacteristics: unit-interval parameter out of range");
  }
  if (call_depth <= 0 || btb_footprint <= 0 || dcache_ws_kb <= 0 ||
      dcache_ws2_kb <= 0 || icache_ws_kb <= 0 || ilp <= 0 || mlp < 1.0) {
    throw std::invalid_argument(
        "WorkloadCharacteristics: non-positive capacity/parallelism value");
  }
}

void validate_cpu_config(const arch::CpuConfig& cfg) {
  if (cfg.freq_ghz <= 0 || cfg.width < 1 || cfg.fetch_buffer_bytes < 4 ||
      cfg.fetch_queue_uops < 1 || cfg.ras_size < 1 || cfg.btb_size < 1 ||
      cfg.rob_size < 1 || cfg.int_rf < 1 || cfg.fp_rf < 1 || cfg.iq_size < 1 ||
      cfg.lq_size < 1 || cfg.sq_size < 1 || cfg.int_alu < 1 ||
      cfg.int_multdiv < 1 || cfg.fp_alu < 1 || cfg.fp_multdiv < 1 ||
      cfg.cacheline_bytes < 8 || cfg.l1i_kb < 1 || cfg.l1i_assoc < 1 ||
      cfg.l1d_kb < 1 || cfg.l1d_assoc < 1 || cfg.l2_kb < 1 ||
      cfg.l2_assoc < 1) {
    throw std::invalid_argument("CpuConfig: non-physical parameter value");
  }
}

namespace {

/// Power-law capacity miss curve: fraction of accesses missing a cache of
/// @p size_kb given working set @p ws_kb; associativity sharpens the knee
/// (conflict misses shrink), streaming raises the asymptote.
double cache_miss_rate(double ws_kb, double size_kb, int assoc,
                       double streaming, double cacheline_bytes) {
  const double alpha = 0.65 + 0.15 * std::log2(static_cast<double>(assoc));
  const double base = 0.18 + 0.30 * streaming;
  double miss = base * std::pow(ws_kb / (ws_kb + size_kb), alpha);
  // Spatial locality: streaming code benefits from longer lines
  // (miss ~ 1/line); irregular code loses effective capacity slightly.
  const double line_ratio = cacheline_bytes / 64.0;
  miss *= std::pow(line_ratio, -0.55 * streaming);
  miss *= std::pow(line_ratio, 0.18 * (1.0 - streaming));
  // Compulsory floor.
  return std::clamp(miss + 0.002, 0.0, 1.0);
}

}  // namespace

SimStats CpuModel::simulate(const arch::CpuConfig& cfg,
                            const WorkloadCharacteristics& wl) const {
  validate_cpu_config(cfg);
  wl.validate();

  SimStats st;
  const double W = cfg.width;

  // --- front-end bandwidth bound -------------------------------------------
  // A fetch group is limited by the fetch buffer (bytes / ~4B per uop) and
  // smoothed by the fetch queue decoupling the fetch and decode stages.
  const double fetch_group =
      std::min(W, cfg.fetch_buffer_bytes / 4.0);
  const double queue_smoothing =
      1.0 - 0.25 * std::exp(-cfg.fetch_queue_uops / (4.0 * W));
  st.frontend_ipc = std::max(0.5, fetch_group * queue_smoothing);

  // --- window-limited ILP bound ----------------------------------------------
  // Effective window: the smallest of ROB, IQ reach, register headroom, and
  // the LQ/SQ occupancy limits (Little's law on the memory slots).
  const double arch_regs = 32.0;
  const double rf_need = 0.75;  // fraction of uops writing a register
  const double int_frac =
      wl.f_int_alu + wl.f_int_mul + wl.f_load + wl.f_store + wl.f_branch;
  const double fp_frac = wl.f_fp_alu + wl.f_fp_mul;
  const double w_int_rf =
      std::max(8.0, (cfg.int_rf - arch_regs) / std::max(0.05, rf_need * int_frac));
  const double w_fp_rf =
      fp_frac > 0.01
          ? std::max(8.0, (cfg.fp_rf - arch_regs) / std::max(0.05, rf_need * fp_frac))
          : 1e9;
  const double w_iq = cfg.iq_size / 0.35;  // ~35% of window waits in the IQ
  const double w_lq = wl.f_load > 0.01 ? cfg.lq_size / wl.f_load : 1e9;
  const double w_sq = wl.f_store > 0.01 ? cfg.sq_size / wl.f_store : 1e9;
  const double window = std::min({static_cast<double>(cfg.rob_size), w_iq,
                                  w_int_rf, w_fp_rf, w_lq, w_sq});
  st.effective_window = window;
  // sqrt-law of window ILP, damped by the workload's serial dependence.
  const double window_exp = 0.5 * (1.0 - 0.65 * wl.dep_chain);
  st.window_ipc = wl.ilp * std::pow(window / 64.0, window_exp);

  // --- functional-unit throughput bound -----------------------------------------
  // Per-unit issue throughput (1/latency for unpipelined units).
  const double thr_int_alu = 1.0;
  const double thr_int_mul = 0.45;
  const double thr_fp_alu = 0.6;
  const double thr_fp_mul = 0.35;
  const double agen_ports = cfg.int_alu;  // loads/stores borrow AGUs
  double fu_bound = 1e9;
  auto fu_limit = [&](double frac, double units, double thr) {
    if (frac > 1e-3) fu_bound = std::min(fu_bound, units * thr / frac);
  };
  fu_limit(wl.f_int_alu + 0.35 * (wl.f_load + wl.f_store), cfg.int_alu,
           thr_int_alu);
  fu_limit(wl.f_int_mul, cfg.int_multdiv, thr_int_mul);
  fu_limit(wl.f_fp_alu, cfg.fp_alu, thr_fp_alu);
  fu_limit(wl.f_fp_mul, cfg.fp_multdiv, thr_fp_mul);
  fu_limit(wl.f_load + wl.f_store, agen_ports, 0.9);
  st.fu_ipc = fu_bound;

  const double base_ipc =
      std::min({st.frontend_ipc, st.window_ipc, st.fu_ipc});
  st.base_cpi = 1.0 / base_ipc;

  // --- branch mispredictions -------------------------------------------------------
  const bool tournament =
      cfg.branch_predictor == arch::BranchPredictorType::kTournament;
  const double predictor_miss =
      tournament ? 0.010 + 0.070 * wl.branch_entropy
                 : 0.022 + 0.110 * wl.branch_entropy;
  const double btb_miss =
      0.5 * std::exp(-static_cast<double>(cfg.btb_size) / wl.btb_footprint);
  const double ras_miss =
      wl.indirect_frac * std::exp(-static_cast<double>(cfg.ras_size) /
                                  (1.5 * wl.call_depth));
  const double misp_per_branch =
      std::clamp(predictor_miss + 0.5 * btb_miss + 0.4 * ras_miss, 0.0, 0.6);
  const double misp_per_inst = wl.f_branch * misp_per_branch;
  st.branch_mpki = misp_per_inst * 1000.0;
  // Flush penalty grows with front-end depth (wider cores run deeper FEs,
  // longer fetch queues hold more wrong-path work).
  const double flush_penalty =
      6.0 + 0.5 * W + cfg.fetch_queue_uops / std::max(2.0, W);
  st.branch_cpi = misp_per_inst * flush_penalty;

  // --- cache hierarchy ---------------------------------------------------------------
  const double l2_cycles = timing_.l2_ns * cfg.freq_ghz;
  const double dram_cycles = timing_.dram_ns * cfg.freq_ghz;

  const double l1d_miss =
      cache_miss_rate(wl.dcache_ws_kb, cfg.l1d_kb, cfg.l1d_assoc,
                      wl.streaming, cfg.cacheline_bytes);
  const double l2_miss =
      cache_miss_rate(wl.dcache_ws2_kb, cfg.l2_kb, cfg.l2_assoc,
                      0.5 * wl.streaming, cfg.cacheline_bytes);
  const double mem_accesses = wl.f_load + 0.3 * wl.f_store;  // stores buffer
  st.l1d_mpki = mem_accesses * l1d_miss * 1000.0;
  st.l2_mpki = mem_accesses * l1d_miss * l2_miss * 1000.0;

  // Miss latency overlapped by MLP, itself bounded by the LQ and the window.
  const double mlp_eff = std::clamp(
      std::min({wl.mlp, cfg.lq_size / 6.0, window / 24.0}), 1.0, 12.0);
  const double miss_cost_l2 = l2_cycles;
  const double miss_cost_mem = dram_cycles;
  st.memory_cpi = mem_accesses * l1d_miss *
                  (miss_cost_l2 + l2_miss * miss_cost_mem) / mlp_eff;

  // --- instruction cache ---------------------------------------------------------------
  const double l1i_miss =
      cache_miss_rate(wl.icache_ws_kb, cfg.l1i_kb, cfg.l1i_assoc, 0.15,
                      cfg.cacheline_bytes) *
      0.5;  // fetch-group amortization
  const double fetch_per_inst = 1.0 / std::max(1.0, fetch_group);
  st.l1i_mpki = l1i_miss * 1000.0 * fetch_per_inst * 4.0;
  st.icache_cpi =
      l1i_miss * fetch_per_inst * 4.0 * (l2_cycles + 0.15 * l2_miss * dram_cycles);

  // --- total -----------------------------------------------------------------------------
  const double cpi =
      st.base_cpi + st.branch_cpi + st.memory_cpi + st.icache_cpi;
  st.ipc = 1.0 / cpi;
  return st;
}

}  // namespace metadse::sim
