// Synthetic instruction-trace generation. The SimPoint substitute's phase
// characteristics are turned into a concrete instruction stream — opcode mix,
// register dependency distances, memory address stream with working-set
// structure, and a branch stream with per-PC bias, calls, and returns — which
// the trace-driven pipeline simulator executes against real cache/predictor
// structures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/workload_characteristics.hpp"
#include "tensor/rng.hpp"

namespace metadse::sim {

/// Micro-op class (drives functional-unit selection and latency).
enum class OpClass : uint8_t {
  kIntAlu,
  kIntMul,
  kFpAlu,
  kFpMul,
  kLoad,
  kStore,
  kBranch,
};

/// One trace record.
struct TraceInstr {
  OpClass op = OpClass::kIntAlu;
  uint64_t pc = 0;
  uint64_t mem_addr = 0;       ///< loads/stores only
  uint64_t branch_target = 0;  ///< branches only
  uint32_t dep1 = 0;  ///< distance (in instructions) to first producer; 0 = none
  uint32_t dep2 = 0;  ///< distance to second producer; 0 = none
  bool taken = false;
  bool is_call = false;
  bool is_return = false;
};

/// Generates a synthetic dynamic instruction stream realizing the given
/// behaviour vector. Deterministic given the Rng.
class TraceGenerator {
 public:
  explicit TraceGenerator(const WorkloadCharacteristics& wl);

  /// Generates @p n instructions.
  std::vector<TraceInstr> generate(size_t n, tensor::Rng& rng) const;

 private:
  WorkloadCharacteristics wl_;
};

}  // namespace metadse::sim
