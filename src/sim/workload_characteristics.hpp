// The characteristics vector that drives the analytical CPU model — the
// contract between the workload library (which synthesizes SPEC-like
// profiles/phases) and the performance/power models.
#pragma once

#include <stdexcept>
#include <string>

namespace metadse::sim {

/// Program-intrinsic behaviour parameters for one execution phase
/// (one SimPoint cluster). The instruction-mix fractions must sum to 1.
struct WorkloadCharacteristics {
  // -- instruction mix (fractions of the dynamic instruction stream) --------
  double f_int_alu = 0.45;   ///< simple integer ops
  double f_int_mul = 0.03;   ///< integer multiply/divide
  double f_fp_alu = 0.05;    ///< floating-point add/compare
  double f_fp_mul = 0.02;    ///< floating-point multiply/divide
  double f_load = 0.25;      ///< loads
  double f_store = 0.10;     ///< stores
  double f_branch = 0.10;    ///< branches (conditional + indirect + returns)

  // -- control behaviour ------------------------------------------------------
  double branch_entropy = 0.3;  ///< 0 = perfectly biased, 1 = coin-flip
  double indirect_frac = 0.1;   ///< fraction of branches that are calls/returns/indirect
  double call_depth = 8.0;      ///< typical live call-stack depth (RAS pressure)
  double btb_footprint = 512;   ///< distinct branch targets in flight (entries)

  // -- memory behaviour ---------------------------------------------------------
  double dcache_ws_kb = 24.0;    ///< primary (hot) data working set
  double dcache_ws2_kb = 400.0;  ///< secondary working set contending for L2
  double streaming = 0.3;        ///< 0 = reuse-dominated, 1 = streaming access
  double icache_ws_kb = 20.0;    ///< instruction footprint

  // -- parallelism -----------------------------------------------------------------
  double ilp = 2.5;        ///< intrinsic instruction-level parallelism (~1..6)
  double mlp = 2.0;        ///< memory-level parallelism (~1..8)
  double dep_chain = 0.3;  ///< 0 = wide dataflow, 1 = one serial chain

  /// Throws std::invalid_argument when fractions are inconsistent or any
  /// parameter is outside its physical range.
  void validate() const;
};

}  // namespace metadse::sim
