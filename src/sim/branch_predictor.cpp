#include "sim/branch_predictor.hpp"

#include <stdexcept>

namespace metadse::sim {

BiModePredictor::BiModePredictor(size_t table_bits, size_t history_bits) {
  if (table_bits == 0 || table_bits > 24 || history_bits > 24) {
    throw std::invalid_argument("BiModePredictor: bad table size");
  }
  const size_t n = size_t{1} << table_bits;
  mask_ = n - 1;
  hist_mask_ = (size_t{1} << history_bits) - 1;
  choice_.assign(n, SaturatingCounter(1));
  taken_pht_.assign(n, SaturatingCounter(2));      // taken-biased
  not_taken_pht_.assign(n, SaturatingCounter(1));  // not-taken-biased
}

bool BiModePredictor::predict(uint64_t pc) {
  const size_t ci = (pc >> 2) & mask_;
  const size_t pi = ((pc >> 2) ^ (history_ & hist_mask_)) & mask_;
  return choice_[ci].taken() ? taken_pht_[pi].taken()
                             : not_taken_pht_[pi].taken();
}

void BiModePredictor::update(uint64_t pc, bool taken) {
  const size_t ci = (pc >> 2) & mask_;
  const size_t pi = ((pc >> 2) ^ (history_ & hist_mask_)) & mask_;
  const bool use_taken_side = choice_[ci].taken();
  auto& pht = use_taken_side ? taken_pht_ : not_taken_pht_;
  const bool pht_prediction = pht[pi].taken();
  pht[pi].update(taken);
  // Bi-Mode choice update rule: train the choice except when the selected
  // PHT was correct while disagreeing with the choice direction.
  if (!(pht_prediction == taken && use_taken_side != taken)) {
    choice_[ci].update(taken);
  }
  history_ = (history_ << 1) | (taken ? 1 : 0);
}

TournamentPredictor::TournamentPredictor(size_t table_bits,
                                         size_t local_hist_bits) {
  if (table_bits == 0 || table_bits > 24 || local_hist_bits == 0 ||
      local_hist_bits > 16) {
    throw std::invalid_argument("TournamentPredictor: bad table size");
  }
  const size_t n = size_t{1} << table_bits;
  mask_ = n - 1;
  local_mask_ = (size_t{1} << local_hist_bits) - 1;
  local_history_.assign(n, 0);
  local_pht_.assign(n, SaturatingCounter(1));
  global_pht_.assign(n, SaturatingCounter(1));
  chooser_.assign(n, SaturatingCounter(1));
}

bool TournamentPredictor::predict(uint64_t pc) {
  const size_t li = (pc >> 2) & mask_;
  const size_t lp = local_history_[li] & mask_;
  const size_t gi = (global_history_ ^ (pc >> 2)) & mask_;
  const bool local = local_pht_[lp].taken();
  const bool global = global_pht_[gi].taken();
  return chooser_[gi].taken() ? global : local;
}

void TournamentPredictor::update(uint64_t pc, bool taken) {
  const size_t li = (pc >> 2) & mask_;
  const size_t lp = local_history_[li] & mask_;
  const size_t gi = (global_history_ ^ (pc >> 2)) & mask_;
  const bool local = local_pht_[lp].taken();
  const bool global = global_pht_[gi].taken();
  if (local != global) {
    chooser_[gi].update(global == taken);  // toward the correct component
  }
  local_pht_[lp].update(taken);
  global_pht_[gi].update(taken);
  local_history_[li] =
      static_cast<uint16_t>(((local_history_[li] << 1) | (taken ? 1 : 0)) &
                            local_mask_);
  global_history_ = (global_history_ << 1) | (taken ? 1 : 0);
}

Btb::Btb(size_t entries) {
  if (entries == 0) throw std::invalid_argument("Btb: zero entries");
  entries_.resize(entries);
}

bool Btb::lookup(uint64_t pc, uint64_t& target) const {
  const Entry& e = entries_[pc % entries_.size()];
  if (e.valid && e.tag == pc) {
    target = e.target;
    return true;
  }
  return false;
}

void Btb::update(uint64_t pc, uint64_t target) {
  Entry& e = entries_[pc % entries_.size()];
  e.tag = pc;
  e.target = target;
  e.valid = true;
}

ReturnAddressStack::ReturnAddressStack(size_t depth) {
  if (depth == 0) throw std::invalid_argument("ReturnAddressStack: depth 0");
  stack_.resize(depth);
}

void ReturnAddressStack::push(uint64_t return_address) {
  stack_[top_] = return_address;
  top_ = (top_ + 1) % stack_.size();
  if (live_ < stack_.size()) ++live_;
}

uint64_t ReturnAddressStack::pop() {
  if (live_ == 0) return 0;
  top_ = (top_ + stack_.size() - 1) % stack_.size();
  --live_;
  return stack_[top_];
}

std::unique_ptr<DirectionPredictor> make_predictor(bool tournament) {
  if (tournament) return std::make_unique<TournamentPredictor>();
  return std::make_unique<BiModePredictor>();
}

}  // namespace metadse::sim
