#include "sim/power_model.hpp"

#include <cmath>

namespace metadse::sim {

namespace {

/// Supply voltage under the frequency/voltage curve (DVFS): higher clocks
/// need higher voltage, superlinearly raising dynamic power.
double voltage(double freq_ghz) { return 0.65 + 0.12 * freq_ghz; }

}  // namespace

double PowerModel::area(const arch::CpuConfig& cfg) const {
  // Area in arbitrary units; CAM-style structures (IQ, LSQ) grow
  // superlinearly, SRAM arrays linearly with capacity, ported structures
  // with the port count (~width).
  const double ports = 1.0 + 0.15 * cfg.width;
  double a = 0.0;
  a += 0.004 * cfg.rob_size * ports;
  a += 0.003 * (cfg.int_rf + cfg.fp_rf) * ports;
  a += 0.0025 * std::pow(static_cast<double>(cfg.iq_size), 1.3);
  a += 0.002 * std::pow(static_cast<double>(cfg.lq_size + cfg.sq_size), 1.2);
  a += 0.30 * cfg.int_alu + 0.80 * cfg.int_multdiv + 0.90 * cfg.fp_alu +
       1.40 * cfg.fp_multdiv;
  a += 0.0008 * cfg.btb_size + 0.01 * cfg.ras_size;
  a += (cfg.branch_predictor == arch::BranchPredictorType::kTournament ? 0.9
                                                                       : 0.4);
  a += 0.07 * (cfg.l1i_kb * std::sqrt(static_cast<double>(cfg.l1i_assoc)));
  a += 0.07 * (cfg.l1d_kb * std::sqrt(static_cast<double>(cfg.l1d_assoc)));
  a += 0.03 * (cfg.l2_kb * std::sqrt(static_cast<double>(cfg.l2_assoc)));
  a += 0.25 * cfg.width + 0.01 * cfg.fetch_queue_uops +
       0.02 * cfg.fetch_buffer_bytes / 8.0;
  return a;
}

PowerBreakdown PowerModel::evaluate(const arch::CpuConfig& cfg,
                                    const SimStats& stats) const {
  validate_cpu_config(cfg);
  const double v = voltage(cfg.freq_ghz);
  const double v2f = v * v * cfg.freq_ghz;  // C V^2 f scale
  const double ipc = stats.ipc;
  const double ports = 1.0 + 0.12 * cfg.width;

  PowerBreakdown p;

  // Core: accesses per cycle ~ IPC; CAM lookups scan the whole structure.
  double core_c = 0.0;
  core_c += 0.0020 * cfg.rob_size * ports;
  core_c += 0.0018 * (cfg.int_rf + cfg.fp_rf) * ports;
  core_c += 0.0016 * std::pow(static_cast<double>(cfg.iq_size), 1.25);
  core_c += 0.0012 * std::pow(static_cast<double>(cfg.lq_size + cfg.sq_size), 1.15);
  core_c += 0.16 * cfg.int_alu + 0.30 * cfg.int_multdiv + 0.34 * cfg.fp_alu +
            0.55 * cfg.fp_multdiv;
  p.core_dynamic = core_c * v2f * (0.35 + 0.65 * ipc / 4.0);

  // Front-end: fetch activity tracks IPC; the predictor and BTB are touched
  // every fetch group; mispredictions add wrong-path activity.
  double fe_c = 0.0;
  fe_c += 0.05 * cfg.width + 0.004 * cfg.fetch_queue_uops +
          0.006 * cfg.fetch_buffer_bytes / 8.0;
  fe_c += 0.00035 * cfg.btb_size + 0.004 * cfg.ras_size;
  fe_c += (cfg.branch_predictor == arch::BranchPredictorType::kTournament
               ? 0.40
               : 0.18);
  const double wrongpath = 1.0 + 0.04 * stats.branch_mpki;
  p.frontend_dynamic = fe_c * v2f * (0.3 + 0.7 * ipc / 4.0) * wrongpath;

  // Caches: energy per access grows with capacity^0.5 and associativity;
  // L2 activity is driven by L1 miss rates.
  const double l1i_acc = ipc / std::max(1, cfg.width) * 1.2;
  const double l1d_acc = ipc * 0.35;
  const double l2_acc = (stats.l1d_mpki + stats.l1i_mpki) / 1000.0 * ipc;
  const double e_l1i = 0.05 * std::sqrt(static_cast<double>(cfg.l1i_kb)) *
                       cfg.l1i_assoc;
  const double e_l1d = 0.05 * std::sqrt(static_cast<double>(cfg.l1d_kb)) *
                       cfg.l1d_assoc;
  const double e_l2 = 0.10 * std::sqrt(static_cast<double>(cfg.l2_kb)) *
                      cfg.l2_assoc;
  p.cache_dynamic =
      (l1i_acc * e_l1i + l1d_acc * e_l1d + l2_acc * e_l2) * v2f;

  // Leakage: proportional to area, mildly super-linear in voltage.
  p.leakage = 0.012 * area(cfg) * std::pow(v / 0.9, 1.6);

  p.total =
      p.core_dynamic + p.frontend_dynamic + p.cache_dynamic + p.leakage;
  return p;
}

}  // namespace metadse::sim
