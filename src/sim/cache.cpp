#include "sim/cache.hpp"

#include <stdexcept>

namespace metadse::sim {

namespace {
size_t floor_pow2(size_t v) {
  size_t p = 1;
  while (p * 2 <= v) p *= 2;
  return p;
}
}  // namespace

SetAssocCache::SetAssocCache(size_t size_bytes, size_t assoc,
                             size_t line_bytes)
    : assoc_(assoc), line_(line_bytes) {
  if (size_bytes == 0 || assoc == 0 || line_bytes == 0 ||
      size_bytes < assoc * line_bytes) {
    throw std::invalid_argument("SetAssocCache: inconsistent geometry");
  }
  sets_ = floor_pow2(size_bytes / (assoc * line_bytes));
  ways_.resize(sets_ * assoc_);
}

size_t SetAssocCache::set_index(uint64_t address) const {
  return static_cast<size_t>((address / line_) % sets_);
}

uint64_t SetAssocCache::tag_of(uint64_t address) const {
  return address / line_ / sets_;
}

bool SetAssocCache::access(uint64_t address) {
  ++stamp_;
  const size_t base = set_index(address) * assoc_;
  const uint64_t tag = tag_of(address);
  size_t victim = base;
  for (size_t w = base; w < base + assoc_; ++w) {
    if (ways_[w].valid && ways_[w].tag == tag) {
      ways_[w].lru = stamp_;
      ++hits_;
      return true;
    }
    if (!ways_[w].valid ||
        (ways_[victim].valid && ways_[w].lru < ways_[victim].lru)) {
      victim = w;
    }
  }
  ways_[victim].tag = tag;
  ways_[victim].valid = true;
  ways_[victim].lru = stamp_;
  ++misses_;
  return false;
}

bool SetAssocCache::probe(uint64_t address) const {
  const size_t base = set_index(address) * assoc_;
  const uint64_t tag = tag_of(address);
  for (size_t w = base; w < base + assoc_; ++w) {
    if (ways_[w].valid && ways_[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::flush() {
  for (auto& w : ways_) w.valid = false;
}

double SetAssocCache::miss_rate() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0 : static_cast<double>(misses_) / total;
}

}  // namespace metadse::sim
