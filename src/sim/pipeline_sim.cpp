#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace metadse::sim {

PipelineSimulator::PipelineSimulator(const arch::CpuConfig& cfg)
    : PipelineSimulator(cfg, Latencies{}) {}

PipelineSimulator::PipelineSimulator(const arch::CpuConfig& cfg,
                                     Latencies lat)
    : cfg_(cfg), lat_(lat) {
  validate_cpu_config(cfg);
}

PipelineStats PipelineSimulator::run(const std::vector<TraceInstr>& trace,
                                     double warmup_fraction) {
  if (trace.empty()) {
    throw std::invalid_argument("PipelineSimulator: empty trace");
  }
  if (warmup_fraction < 0.0 || warmup_fraction >= 1.0) {
    throw std::invalid_argument(
        "PipelineSimulator: warmup_fraction must be in [0, 1)");
  }
  const size_t n = trace.size();
  const int W = cfg_.width;
  const int fetch_group = std::max(1, std::min(W, cfg_.fetch_buffer_bytes / 4));

  // Structural models.
  SetAssocCache l1i(static_cast<size_t>(cfg_.l1i_kb) * 1024, cfg_.l1i_assoc,
                    cfg_.cacheline_bytes);
  SetAssocCache l1d(static_cast<size_t>(cfg_.l1d_kb) * 1024, cfg_.l1d_assoc,
                    cfg_.cacheline_bytes);
  SetAssocCache l2(static_cast<size_t>(cfg_.l2_kb) * 1024, cfg_.l2_assoc,
                   cfg_.cacheline_bytes);
  auto predictor = make_predictor(cfg_.branch_predictor ==
                                  arch::BranchPredictorType::kTournament);
  Btb btb(cfg_.btb_size);
  ReturnAddressStack ras(cfg_.ras_size);

  const int l2_lat =
      std::max(1, static_cast<int>(lat_.l2_ns * cfg_.freq_ghz));
  const int dram_lat =
      std::max(2, static_cast<int>(lat_.dram_ns * cfg_.freq_ghz));

  // Per-instruction schedule (cycles).
  std::vector<int64_t> dispatch(n), ready(n), issue(n), complete(n),
      commit(n);

  // Functional units: next-free cycle per unit, per class.
  std::vector<int64_t> fu_int_alu(cfg_.int_alu, 0);
  std::vector<int64_t> fu_int_mul(cfg_.int_multdiv, 0);
  std::vector<int64_t> fu_fp_alu(cfg_.fp_alu, 0);
  std::vector<int64_t> fu_fp_mul(cfg_.fp_multdiv, 0);

  auto acquire = [](std::vector<int64_t>& units, int64_t ready_at,
                    int64_t occupy) {
    size_t best = 0;
    for (size_t u = 1; u < units.size(); ++u) {
      if (units[u] < units[best]) best = u;
    }
    const int64_t start = std::max(ready_at, units[best]);
    units[best] = start + occupy;
    return start;
  };

  // Occupancy tracking by "index distance": the k-th prior load/store/etc.
  std::vector<size_t> load_idx;   // trace indices of loads, in order
  std::vector<size_t> store_idx;  // trace indices of stores
  std::vector<size_t> reg_idx;    // indices of register-writing uops
  load_idx.reserve(n / 3);
  store_idx.reserve(n / 8);
  reg_idx.reserve(n);

  // Front-end state.
  int64_t fetch_cycle = 0;   // cycle of the current fetch group
  int in_group = 0;          // instructions fetched in this group
  int64_t redirect_at = 0;   // earliest cycle fetch may resume (mispredict)
  uint64_t last_fetch_line = ~uint64_t{0};

  // Register headroom: how many in-flight reg writers fit.
  const int arch_regs = 32;
  const size_t rf_headroom = std::max(
      8, cfg_.int_rf - arch_regs + std::max(0, cfg_.fp_rf - arch_regs) / 2);

  uint64_t mispredicts = 0;
  uint64_t btb_misses_taken = 0;
  uint64_t direction_correct = 0;
  uint64_t branches = 0;

  const size_t warmup =
      std::min(n - 1, static_cast<size_t>(warmup_fraction *
                                          static_cast<double>(n)));
  struct Snapshot {
    uint64_t l1d = 0, l2 = 0, l1i = 0, misp = 0, btb = 0, dir_ok = 0,
             br = 0;
  } snap;

  const uint64_t line_mask = ~(static_cast<uint64_t>(cfg_.cacheline_bytes) - 1);

  for (size_t i = 0; i < n; ++i) {
    const TraceInstr& ins = trace[i];

    // ---- fetch -------------------------------------------------------------
    fetch_cycle = std::max(fetch_cycle, redirect_at);
    if (in_group >= fetch_group) {
      ++fetch_cycle;
      in_group = 0;
    }
    const uint64_t line = ins.pc & line_mask;
    if (line != last_fetch_line) {
      last_fetch_line = line;
      if (!l1i.access(ins.pc)) {
        const int64_t miss_lat =
            l2.access(ins.pc) ? l2_lat : l2_lat + dram_lat;
        // The fetch queue decouples fetch from decode: a miss only stalls
        // the pipe once the queued uops drain.
        const int64_t buffered = cfg_.fetch_queue_uops / fetch_group;
        fetch_cycle += std::max<int64_t>(1, miss_lat - buffered);
        in_group = 0;
        // Next-line instruction prefetch (sequential fetch-ahead).
        const uint64_t next = ins.pc + cfg_.cacheline_bytes;
        l1i.access(next);
        l2.access(next);
      }
    }
    ++in_group;

    // ---- branch prediction (at fetch) ---------------------------------------
    bool mispredicted = false;
    if (ins.op == OpClass::kBranch) {
      ++branches;
      bool predicted_taken;
      uint64_t predicted_target = 0;
      if (ins.is_return) {
        predicted_taken = true;
        predicted_target = ras.pop();
      } else if (ins.is_call) {
        predicted_taken = true;
        btb.lookup(ins.pc, predicted_target);
        ras.push(ins.pc + 4);
      } else {
        predicted_taken = predictor->predict(ins.pc);
        predictor->update(ins.pc, ins.taken);
      }
      if (!ins.is_return && !ins.is_call) {
        direction_correct += predicted_taken == ins.taken;
      } else {
        direction_correct += 1;  // calls/returns always predicted taken
      }

      bool target_ok = true;
      if (ins.taken) {
        if (ins.is_return) {
          target_ok = predicted_target == ins.branch_target;
        } else {
          uint64_t t = 0;
          const bool hit = btb.lookup(ins.pc, t);
          target_ok = hit && t == ins.branch_target;
          if (!hit || t != ins.branch_target) ++btb_misses_taken;
          btb.update(ins.pc, ins.branch_target);
        }
      }
      const bool direction_wrong =
          (!ins.is_return && !ins.is_call)
              ? predicted_taken != ins.taken
              : false;
      mispredicted = direction_wrong || (ins.taken && !target_ok);
      if (ins.taken && !mispredicted) {
        // Correctly predicted taken branch: redirected fetch group.
        ++fetch_cycle;
        in_group = 0;
        last_fetch_line = ~uint64_t{0};
      }
    }

    // ---- dispatch (in order, width-limited, resource-limited) -----------------
    int64_t d = fetch_cycle + lat_.frontend_depth;
    if (i >= 1) d = std::max(d, dispatch[i - 1]);
    if (i >= static_cast<size_t>(W)) d = std::max(d, dispatch[i - W] + 1);
    // ROB: entry freed when the (i - rob)-th instruction commits.
    if (i >= static_cast<size_t>(cfg_.rob_size)) {
      d = std::max(d, commit[i - cfg_.rob_size] + 1);
    }
    // IQ: entry freed at issue of the (i - iq)-th instruction.
    if (i >= static_cast<size_t>(cfg_.iq_size)) {
      d = std::max(d, issue[i - cfg_.iq_size] + 1);
    }
    // LQ / SQ: freed at commit of the matching older memory op.
    if (ins.op == OpClass::kLoad &&
        load_idx.size() >= static_cast<size_t>(cfg_.lq_size)) {
      d = std::max(d, commit[load_idx[load_idx.size() - cfg_.lq_size]] + 1);
    }
    if (ins.op == OpClass::kStore &&
        store_idx.size() >= static_cast<size_t>(cfg_.sq_size)) {
      d = std::max(d, commit[store_idx[store_idx.size() - cfg_.sq_size]] + 1);
    }
    // Physical registers: freed at commit of older writers.
    const bool writes_reg =
        ins.op != OpClass::kBranch && ins.op != OpClass::kStore;
    if (writes_reg && reg_idx.size() >= rf_headroom) {
      d = std::max(d, commit[reg_idx[reg_idx.size() - rf_headroom]] + 1);
    }
    dispatch[i] = d;
    if (ins.op == OpClass::kLoad) load_idx.push_back(i);
    if (ins.op == OpClass::kStore) store_idx.push_back(i);
    if (writes_reg) reg_idx.push_back(i);

    // ---- ready (dataflow) -----------------------------------------------------
    int64_t r = d;
    if (ins.dep1 > 0 && ins.dep1 <= i) {
      r = std::max(r, complete[i - ins.dep1]);
    }
    if (ins.dep2 > 0 && ins.dep2 <= i) {
      r = std::max(r, complete[i - ins.dep2]);
    }
    ready[i] = r;

    // ---- issue + execute --------------------------------------------------------
    int64_t is = r;
    int64_t lat = lat_.int_alu;
    switch (ins.op) {
      case OpClass::kIntAlu:
        is = acquire(fu_int_alu, r, 1);
        lat = lat_.int_alu;
        break;
      case OpClass::kIntMul:
        is = acquire(fu_int_mul, r, 2);  // partially pipelined
        lat = lat_.int_mul;
        break;
      case OpClass::kFpAlu:
        is = acquire(fu_fp_alu, r, 1);
        lat = lat_.fp_alu;
        break;
      case OpClass::kFpMul:
        is = acquire(fu_fp_mul, r, 2);
        lat = lat_.fp_mul;
        break;
      case OpClass::kLoad: {
        is = acquire(fu_int_alu, r, 1);  // AGU borrows an integer port
        if (l1d.access(ins.mem_addr)) {
          lat = lat_.l1_hit;
        } else if (l2.access(ins.mem_addr)) {
          lat = lat_.l1_hit + l2_lat;
        } else {
          lat = lat_.l1_hit + l2_lat + dram_lat;
        }
        if (lat > lat_.l1_hit) {
          // Next-line prefetch on miss (every modern core ships at least a
          // stream prefetcher; without it, streaming kernels would be
          // DRAM-bound regardless of core size).
          const uint64_t next = ins.mem_addr + cfg_.cacheline_bytes;
          l1d.access(next);
          l2.access(next);
        }
        break;
      }
      case OpClass::kStore: {
        is = acquire(fu_int_alu, r, 1);
        // Stores retire through the store buffer; fill the line lazily.
        l1d.access(ins.mem_addr);
        lat = 1;
        break;
      }
      case OpClass::kBranch:
        is = acquire(fu_int_alu, r, 1);
        lat = 1;
        break;
    }
    issue[i] = is;
    complete[i] = is + lat;

    // ---- commit (in order, width per cycle) ----------------------------------------
    int64_t c = complete[i];
    if (i >= 1) c = std::max(c, commit[i - 1]);
    if (i >= static_cast<size_t>(W)) c = std::max(c, commit[i - W] + 1);
    commit[i] = c;

    // ---- misprediction redirect -----------------------------------------------------
    if (mispredicted) {
      ++mispredicts;
      redirect_at = complete[i] + 1;
      in_group = 0;
      last_fetch_line = ~uint64_t{0};
    }

    if (i + 1 == warmup) {
      snap = {l1d.misses(), l2.misses(), l1i.misses(), mispredicts,
              btb_misses_taken, direction_correct, branches};
    }
  }

  PipelineStats st;
  const size_t measured = n - warmup;
  st.instructions = measured;
  const int64_t start_cycle = warmup == 0 ? -1 : commit[warmup - 1];
  st.cycles = static_cast<uint64_t>(commit[n - 1] - start_cycle);
  st.ipc = static_cast<double>(measured) / static_cast<double>(st.cycles);
  const double kilo = static_cast<double>(measured) / 1000.0;
  st.branch_mpki = static_cast<double>(mispredicts - snap.misp) / kilo;
  st.l1d_mpki = static_cast<double>(l1d.misses() - snap.l1d) / kilo;
  st.l2_mpki = static_cast<double>(l2.misses() - snap.l2) / kilo;
  st.l1i_mpki = static_cast<double>(l1i.misses() - snap.l1i) / kilo;
  st.btb_mpki = static_cast<double>(btb_misses_taken - snap.btb) / kilo;
  const uint64_t br_measured = branches - snap.br;
  st.predictor_accuracy =
      br_measured == 0
          ? 1.0
          : static_cast<double>(direction_correct - snap.dir_ok) /
                static_cast<double>(br_measured);
  return st;
}

PipelineStats simulate_trace(const arch::CpuConfig& cfg,
                             const WorkloadCharacteristics& wl,
                             size_t n_instructions, uint64_t seed) {
  TraceGenerator gen(wl);
  tensor::Rng rng(seed);
  const auto trace = gen.generate(n_instructions, rng);
  PipelineSimulator sim(cfg);
  return sim.run(trace);
}

}  // namespace metadse::sim
