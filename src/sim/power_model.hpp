// The McPAT substitute: a structure-level analytical power model. Dynamic
// energy per structure scales with its size/ports and the activity rates
// reported by the performance model; leakage scales with estimated area.
// Dynamic power follows C * V^2 * f with voltage coupled to frequency (DVFS).
#pragma once

#include "arch/design_space.hpp"
#include "sim/cpu_model.hpp"

namespace metadse::sim {

/// Per-component power breakdown in watts (model units).
struct PowerBreakdown {
  double core_dynamic = 0.0;    ///< pipeline, FUs, RF, ROB, IQ, LSQ
  double frontend_dynamic = 0.0;///< fetch, decode, branch predictor, BTB/RAS
  double cache_dynamic = 0.0;   ///< L1I + L1D + L2
  double leakage = 0.0;         ///< static power, proportional to area
  double total = 0.0;           ///< sum of the above
};

/// Analytical power model of the Table I core.
class PowerModel {
 public:
  PowerModel() = default;

  /// Computes the power for a design point running a workload whose activity
  /// is summarized by @p stats (from CpuModel::simulate).
  PowerBreakdown evaluate(const arch::CpuConfig& cfg,
                          const SimStats& stats) const;

  /// Estimated area in model units (mm^2-like), used for leakage.
  double area(const arch::CpuConfig& cfg) const;
};

}  // namespace metadse::sim
