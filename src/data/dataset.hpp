// Dataset substrate: labelled design points per workload (the product of the
// gem5+McPAT substitute, aggregated over SimPoint phases), few-shot Task
// construction (support/query splits), and label scaling.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/design_space.hpp"
#include "tensor/tensor.hpp"
#include "sim/cpu_model.hpp"
#include "sim/fault_injection.hpp"
#include "sim/power_model.hpp"
#include "workload/spec_suite.hpp"

namespace metadse::data {

using arch::Config;
using tensor::Rng;

/// One labelled design point.
struct Sample {
  Config config;                ///< candidate-value indices (Table I order)
  std::vector<float> features;  ///< normalized to [0,1] per parameter
  float ipc = 0.0F;             ///< phase-weighted IPC
  float power = 0.0F;           ///< phase-weighted total power (watts)
};

/// All labelled samples of one workload.
struct Dataset {
  std::string workload;
  std::vector<Sample> samples;

  size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
};

/// Which regression target(s) a model predicts.
enum class TargetMetric { kIpc, kPower, kBoth };

/// Number of outputs for a target selection (1 or 2).
size_t target_width(TargetMetric t);

/// Label vector for one sample under a target selection.
std::vector<float> target_of(const Sample& s, TargetMetric t);

/// Which gem5 substitute produces the labels.
enum class SimBackend {
  kAnalytical,   ///< interval-analysis CpuModel (fast; the default)
  kTraceDriven,  ///< trace-driven PipelineSimulator (structural; ~10^3x slower)
};

/// Trace-driven backend knobs.
struct TraceBackendOptions {
  size_t instructions = 50000;  ///< trace length per phase
  size_t max_phases = 5;        ///< top-weight phases simulated (renormalized)
  uint64_t seed = 99;           ///< trace-generation seed
};

/// How generate() survives a flaky evaluation substrate.
struct RetryPolicy {
  size_t max_attempts = 3;      ///< total tries per design point (>= 1)
  size_t backoff_base_ms = 10;  ///< first-retry backoff (doubles per retry)
  size_t backoff_cap_ms = 1000; ///< exponential backoff ceiling
};

/// What happened while generating one dataset. Surfaced through
/// MetaDseFramework and the CLI so degraded datasets are visible, never
/// silent.
struct GenerationReport {
  size_t requested = 0;          ///< design points asked for
  size_t generated = 0;          ///< labelled samples that survived
  size_t retries = 0;            ///< re-evaluations after a failed attempt
  size_t failures = 0;           ///< SimulationFailure attempts observed
  size_t timeouts = 0;           ///< SimulationTimeout attempts observed
  size_t nonfinite_labels = 0;   ///< attempts rejected for NaN/Inf labels
  size_t implausible_labels = 0; ///< finite labels outside physical bounds
  size_t backoff_ms = 0;         ///< total backoff the policy would sleep
  /// Points dropped after exhausting the retry budget.
  std::vector<Config> quarantined;

  size_t dropped() const { return quarantined.size(); }
  bool degraded() const { return generated < requested; }
  /// One-line human summary ("1187/1200 points, 13 quarantined, ...").
  std::string summary() const;
};

/// Generates labelled datasets by running the CPU + power models over the
/// phases of a workload and aggregating by phase weight — the simulation
/// pipeline of the paper's "Datasets Generation" section.
class DatasetGenerator {
 public:
  explicit DatasetGenerator(const arch::DesignSpace& space,
                            sim::CpuModel cpu = sim::CpuModel(),
                            sim::PowerModel power = sim::PowerModel());

  /// Selects the labelling backend (default analytical). The trace-driven
  /// backend simulates the top-weight phases only (see TraceBackendOptions);
  /// use it for small datasets or validation runs.
  void set_backend(SimBackend backend, TraceBackendOptions options = {});
  SimBackend backend() const { return backend_; }

  /// Arms deterministic fault injection on every evaluate() call (testing
  /// the retry/quarantine path); a plan with all-zero rates disarms it.
  void set_fault_plan(const sim::FaultPlan& plan);
  const sim::FaultInjector* fault_injector() const {
    return injector_ ? &*injector_ : nullptr;
  }

  /// Replaces the retry behaviour of generate().
  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return retry_; }

  /// Hook invoked with each computed backoff (milliseconds) before a retry.
  /// Defaults to no-op so tests and the analytical backend never sleep;
  /// a production substrate would install a real sleep here.
  void set_backoff_hook(std::function<void(size_t)> hook) {
    backoff_hook_ = std::move(hook);
  }

  /// Phase-weighted (IPC, power) of one design point on one workload.
  /// Under an armed fault plan this may throw sim::SimulationFailure /
  /// sim::SimulationTimeout or return corrupted labels; @p attempt selects
  /// the fault draw (retries pass increasing attempts).
  std::pair<double, double> evaluate(const Config& c,
                                     const workload::Workload& wl,
                                     size_t attempt = 0) const;

  /// @p n design points sampled by Latin hypercube (default) or uniformly.
  /// Evaluation failures and non-finite labels are retried per the
  /// RetryPolicy; points that exhaust the budget are quarantined and the
  /// dataset is built from the survivors. When @p report is non-null it
  /// receives the full drop/retry accounting.
  Dataset generate(const workload::Workload& wl, size_t n, Rng& rng,
                   bool latin_hypercube = true,
                   GenerationReport* report = nullptr) const;

  const arch::DesignSpace& space() const { return *space_; }

 private:
  /// Outcome of labelling one design point (see dataset.cpp).
  struct PointResult;

  /// Runs the full retry loop for one point. Thread-safe: reads only const
  /// generator state and derives fault draws from the point key, so results
  /// are independent of which pool worker evaluates the point.
  PointResult label_point(const Config& c, const workload::Workload& wl) const;

  const arch::DesignSpace* space_;
  sim::CpuModel cpu_;
  sim::PowerModel power_;
  SimBackend backend_ = SimBackend::kAnalytical;
  TraceBackendOptions trace_options_{};
  std::optional<sim::FaultInjector> injector_;
  RetryPolicy retry_{};
  std::function<void(size_t)> backoff_hook_;
};

/// A few-shot task: K-shot support set and a query set, as tensors ready for
/// the surrogate model ([n, n_params] features, [n, width] labels).
struct Task {
  tensor::Tensor support_x;
  tensor::Tensor support_y;
  tensor::Tensor query_x;
  tensor::Tensor query_y;
};

/// Draws support/query tasks from one workload's dataset without
/// replacement inside a task (the Split(t, s, q) of Algorithms 1-2).
class TaskSampler {
 public:
  /// @p support + @p query must not exceed the dataset size.
  TaskSampler(const Dataset& dataset, size_t support, size_t query,
              TargetMetric target);

  /// One random task.
  Task sample(Rng& rng) const;

  /// The full dataset as a single "task" with the first @p support samples
  /// (shuffled by @p rng) as support and the rest as query — used by
  /// baselines that train once per workload.
  Task split_all(Rng& rng) const;

  size_t support_size() const { return support_; }
  size_t query_size() const { return query_; }
  TargetMetric target() const { return target_; }

 private:
  const Dataset* dataset_;
  size_t support_;
  size_t query_;
  TargetMetric target_;
};

/// Standardizer for labels (fit on source-workload data only, then reused
/// downstream — no target-workload leakage).
class Scaler {
 public:
  /// Fits mean/std per dimension on @p rows (each of equal width). Rows
  /// containing NaN/Inf are skipped (a poisoned label must not poison the
  /// statistics); throws when no finite row remains.
  void fit(const std::vector<std::vector<float>>& rows);
  /// Fits on a stack of datasets for the given target selection.
  void fit(const std::vector<Dataset>& datasets, TargetMetric target);

  bool fitted() const { return !mean_.empty(); }
  std::vector<float> transform(const std::vector<float>& row) const;
  std::vector<float> inverse(const std::vector<float>& row) const;
  /// Transforms a [n, width] label tensor in place (returns a new tensor).
  tensor::Tensor transform(const tensor::Tensor& y) const;
  tensor::Tensor inverse(const tensor::Tensor& y) const;

  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

/// Writes a dataset as CSV (header: param names, ipc, power).
void write_csv(const Dataset& dataset, const arch::DesignSpace& space,
               const std::string& path);

/// Builds feature/label tensors from a list of sample indices.
Task make_task(const Dataset& dataset, const std::vector<size_t>& support_idx,
               const std::vector<size_t>& query_idx, TargetMetric target);

}  // namespace metadse::data
