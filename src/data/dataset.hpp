// Dataset substrate: labelled design points per workload (the product of the
// gem5+McPAT substitute, aggregated over SimPoint phases), few-shot Task
// construction (support/query splits), and label scaling.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "arch/design_space.hpp"
#include "tensor/tensor.hpp"
#include "sim/cpu_model.hpp"
#include "sim/power_model.hpp"
#include "workload/spec_suite.hpp"

namespace metadse::data {

using arch::Config;
using tensor::Rng;

/// One labelled design point.
struct Sample {
  Config config;                ///< candidate-value indices (Table I order)
  std::vector<float> features;  ///< normalized to [0,1] per parameter
  float ipc = 0.0F;             ///< phase-weighted IPC
  float power = 0.0F;           ///< phase-weighted total power (watts)
};

/// All labelled samples of one workload.
struct Dataset {
  std::string workload;
  std::vector<Sample> samples;

  size_t size() const { return samples.size(); }
  bool empty() const { return samples.empty(); }
};

/// Which regression target(s) a model predicts.
enum class TargetMetric { kIpc, kPower, kBoth };

/// Number of outputs for a target selection (1 or 2).
size_t target_width(TargetMetric t);

/// Label vector for one sample under a target selection.
std::vector<float> target_of(const Sample& s, TargetMetric t);

/// Which gem5 substitute produces the labels.
enum class SimBackend {
  kAnalytical,   ///< interval-analysis CpuModel (fast; the default)
  kTraceDriven,  ///< trace-driven PipelineSimulator (structural; ~10^3x slower)
};

/// Trace-driven backend knobs.
struct TraceBackendOptions {
  size_t instructions = 50000;  ///< trace length per phase
  size_t max_phases = 5;        ///< top-weight phases simulated (renormalized)
  uint64_t seed = 99;           ///< trace-generation seed
};

/// Generates labelled datasets by running the CPU + power models over the
/// phases of a workload and aggregating by phase weight — the simulation
/// pipeline of the paper's "Datasets Generation" section.
class DatasetGenerator {
 public:
  explicit DatasetGenerator(const arch::DesignSpace& space,
                            sim::CpuModel cpu = sim::CpuModel(),
                            sim::PowerModel power = sim::PowerModel());

  /// Selects the labelling backend (default analytical). The trace-driven
  /// backend simulates the top-weight phases only (see TraceBackendOptions);
  /// use it for small datasets or validation runs.
  void set_backend(SimBackend backend, TraceBackendOptions options = {});
  SimBackend backend() const { return backend_; }

  /// Phase-weighted (IPC, power) of one design point on one workload.
  std::pair<double, double> evaluate(const Config& c,
                                     const workload::Workload& wl) const;

  /// @p n design points sampled by Latin hypercube (default) or uniformly.
  Dataset generate(const workload::Workload& wl, size_t n, Rng& rng,
                   bool latin_hypercube = true) const;

  const arch::DesignSpace& space() const { return *space_; }

 private:
  const arch::DesignSpace* space_;
  sim::CpuModel cpu_;
  sim::PowerModel power_;
  SimBackend backend_ = SimBackend::kAnalytical;
  TraceBackendOptions trace_options_{};
};

/// A few-shot task: K-shot support set and a query set, as tensors ready for
/// the surrogate model ([n, n_params] features, [n, width] labels).
struct Task {
  tensor::Tensor support_x;
  tensor::Tensor support_y;
  tensor::Tensor query_x;
  tensor::Tensor query_y;
};

/// Draws support/query tasks from one workload's dataset without
/// replacement inside a task (the Split(t, s, q) of Algorithms 1-2).
class TaskSampler {
 public:
  /// @p support + @p query must not exceed the dataset size.
  TaskSampler(const Dataset& dataset, size_t support, size_t query,
              TargetMetric target);

  /// One random task.
  Task sample(Rng& rng) const;

  /// The full dataset as a single "task" with the first @p support samples
  /// (shuffled by @p rng) as support and the rest as query — used by
  /// baselines that train once per workload.
  Task split_all(Rng& rng) const;

  size_t support_size() const { return support_; }
  size_t query_size() const { return query_; }
  TargetMetric target() const { return target_; }

 private:
  const Dataset* dataset_;
  size_t support_;
  size_t query_;
  TargetMetric target_;
};

/// Standardizer for labels (fit on source-workload data only, then reused
/// downstream — no target-workload leakage).
class Scaler {
 public:
  /// Fits mean/std per dimension on @p rows (each of equal width).
  void fit(const std::vector<std::vector<float>>& rows);
  /// Fits on a stack of datasets for the given target selection.
  void fit(const std::vector<Dataset>& datasets, TargetMetric target);

  bool fitted() const { return !mean_.empty(); }
  std::vector<float> transform(const std::vector<float>& row) const;
  std::vector<float> inverse(const std::vector<float>& row) const;
  /// Transforms a [n, width] label tensor in place (returns a new tensor).
  tensor::Tensor transform(const tensor::Tensor& y) const;
  tensor::Tensor inverse(const tensor::Tensor& y) const;

  const std::vector<float>& mean() const { return mean_; }
  const std::vector<float>& stddev() const { return std_; }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

/// Writes a dataset as CSV (header: param names, ipc, power).
void write_csv(const Dataset& dataset, const arch::DesignSpace& space,
               const std::string& path);

/// Builds feature/label tensors from a list of sample indices.
Task make_task(const Dataset& dataset, const std::vector<size_t>& support_idx,
               const std::vector<size_t>& query_idx, TargetMetric target);

}  // namespace metadse::data
