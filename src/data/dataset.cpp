#include "data/dataset.hpp"

#include "core/parallel.hpp"
#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numeric>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace metadse::data {

size_t target_width(TargetMetric t) {
  return t == TargetMetric::kBoth ? 2 : 1;
}

std::vector<float> target_of(const Sample& s, TargetMetric t) {
  switch (t) {
    case TargetMetric::kIpc:
      return {s.ipc};
    case TargetMetric::kPower:
      return {s.power};
    case TargetMetric::kBoth:
      return {s.ipc, s.power};
  }
  throw std::logic_error("target_of: unreachable");
}

DatasetGenerator::DatasetGenerator(const arch::DesignSpace& space,
                                   sim::CpuModel cpu, sim::PowerModel power)
    : space_(&space), cpu_(cpu), power_(power) {}

void DatasetGenerator::set_backend(SimBackend backend,
                                   TraceBackendOptions options) {
  if (options.instructions == 0 || options.max_phases == 0) {
    throw std::invalid_argument("TraceBackendOptions: zero-sized knob");
  }
  backend_ = backend;
  trace_options_ = options;
}

void DatasetGenerator::set_fault_plan(const sim::FaultPlan& plan) {
  if (plan.enabled()) {
    injector_.emplace(plan);
  } else {
    injector_.reset();
  }
}

void DatasetGenerator::set_retry_policy(const RetryPolicy& policy) {
  if (policy.max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 1");
  }
  retry_ = policy;
}

std::string GenerationReport::summary() const {
  std::ostringstream os;
  os << generated << "/" << requested << " points";
  if (dropped() > 0) os << ", " << dropped() << " quarantined";
  if (retries > 0) os << ", " << retries << " retries";
  if (failures > 0) os << ", " << failures << " failures";
  if (timeouts > 0) os << ", " << timeouts << " timeouts";
  if (nonfinite_labels > 0) {
    os << ", " << nonfinite_labels << " non-finite labels rejected";
  }
  if (implausible_labels > 0) {
    os << ", " << implausible_labels << " implausible labels rejected";
  }
  return os.str();
}

std::pair<double, double> DatasetGenerator::evaluate(
    const Config& c, const workload::Workload& wl, size_t attempt) const {
  if (injector_) {
    const uint64_t key = sim::FaultInjector::point_key(c);
    switch (const auto outcome = injector_->outcome(key, attempt)) {
      case sim::FaultOutcome::kOk:
        break;
      case sim::FaultOutcome::kFail:
        throw sim::SimulationFailure("injected: simulator crash on " +
                                     wl.name());
      case sim::FaultOutcome::kTimeout:
        throw sim::SimulationTimeout("injected: simulator timeout on " +
                                     wl.name());
      case sim::FaultOutcome::kNanLabel:
      case sim::FaultOutcome::kGarbage:
        return injector_->corrupt_labels(outcome, key, attempt);
    }
  }
  const auto cfg = arch::to_cpu_config(*space_, c);
  double ipc = 0.0;
  double pw = 0.0;
  if (backend_ == SimBackend::kAnalytical) {
    for (const auto& phase : wl.phases()) {
      const auto st = cpu_.simulate(cfg, phase.behavior);
      ipc += phase.weight * st.ipc;
      pw += phase.weight * power_.evaluate(cfg, st).total;
    }
    return {ipc, pw};
  }
  // Trace-driven backend: simulate the top-weight phases, renormalized.
  std::vector<const workload::Phase*> phases;
  for (const auto& p : wl.phases()) phases.push_back(&p);
  std::sort(phases.begin(), phases.end(),
            [](const workload::Phase* a, const workload::Phase* b) {
              return a->weight > b->weight;
            });
  if (phases.size() > trace_options_.max_phases) {
    phases.resize(trace_options_.max_phases);
  }
  double total_weight = 0.0;
  for (const auto* p : phases) total_weight += p->weight;
  for (const auto* p : phases) {
    const auto st = sim::simulate_trace(cfg, p->behavior,
                                        trace_options_.instructions,
                                        trace_options_.seed);
    // Map the measured rates into the power model's activity inputs.
    sim::SimStats activity;
    activity.ipc = st.ipc;
    activity.branch_mpki = st.branch_mpki;
    activity.l1d_mpki = st.l1d_mpki;
    activity.l2_mpki = st.l2_mpki;
    activity.l1i_mpki = st.l1i_mpki;
    const double w = p->weight / total_weight;
    ipc += w * st.ipc;
    pw += w * power_.evaluate(cfg, activity).total;
  }
  return {ipc, pw};
}

namespace {

/// Loose physical plausibility gate for labels coming back from the
/// substrate: IPC cannot exceed any real issue width by 10x and power is
/// bounded far above any modelled design. Rejects the "garbage" fault mode
/// (and any genuinely broken simulator output) without clipping real data.
bool plausible_labels(double ipc, double power) {
  return ipc >= 0.0 && ipc <= 128.0 && power >= 0.0 && power <= 1e5;
}

}  // namespace

/// What labelling one design point produced, computed on a pool worker and
/// folded into the dataset/report on the calling thread in point order.
struct DatasetGenerator::PointResult {
  std::optional<Sample> sample;  ///< absent => the point is quarantined
  size_t failures = 0;
  size_t timeouts = 0;
  size_t nonfinite_labels = 0;
  size_t implausible_labels = 0;
  /// Backoff the retry policy charged before each retry, in attempt order.
  /// Replayed through the backoff hook during the ordered reduction so the
  /// hook-call sequence is identical for every thread count.
  std::vector<size_t> backoffs;
};

DatasetGenerator::PointResult DatasetGenerator::label_point(
    const Config& c, const workload::Workload& wl) const {
  PointResult pr;
  for (size_t attempt = 0; attempt < retry_.max_attempts; ++attempt) {
    if (attempt > 0) {
      pr.backoffs.push_back(std::min(
          retry_.backoff_cap_ms, retry_.backoff_base_ms << (attempt - 1)));
    }
    double ipc = 0.0;
    double pw = 0.0;
    try {
      // Fault draws are a pure function of (plan seed, point key, attempt),
      // so the outcome is independent of which worker evaluates the point.
      std::tie(ipc, pw) = evaluate(c, wl, attempt);
    } catch (const sim::SimulationTimeout&) {
      ++pr.timeouts;
      continue;
    } catch (const sim::SimulationFailure&) {
      ++pr.failures;
      continue;
    }
    if (!std::isfinite(ipc) || !std::isfinite(pw)) {
      ++pr.nonfinite_labels;
      continue;
    }
    if (!plausible_labels(ipc, pw)) {
      ++pr.implausible_labels;
      continue;
    }
    Sample s;
    s.config = c;
    s.features = space_->normalize(c);
    s.ipc = static_cast<float>(ipc);
    s.power = static_cast<float>(pw);
    pr.sample = std::move(s);
    break;
  }
  return pr;
}

Dataset DatasetGenerator::generate(const workload::Workload& wl, size_t n,
                                   Rng& rng, bool latin_hypercube,
                                   GenerationReport* report) const {
  Dataset ds;
  ds.workload = wl.name();
  ds.samples.reserve(n);
  GenerationReport rep;
  rep.requested = n;
  const auto configs = latin_hypercube ? space_->sample_latin_hypercube(n, rng)
                                       : space_->sample_uniform(n, rng);
  // Design points are labelled on the pool (each evaluation is a pure
  // function of the config) and folded into the dataset in point order, so
  // the samples, quarantine list, report counters, and backoff-hook call
  // sequence are identical for every thread count.
  core::parallel_map_reduce<PointResult>(
      configs.size(),
      [&](size_t i) { return label_point(configs[i], wl); },
      [&](size_t i, PointResult pr) {
        rep.retries += pr.backoffs.size();
        for (size_t backoff : pr.backoffs) {
          rep.backoff_ms += backoff;
          if (backoff_hook_) backoff_hook_(backoff);
        }
        rep.failures += pr.failures;
        rep.timeouts += pr.timeouts;
        rep.nonfinite_labels += pr.nonfinite_labels;
        rep.implausible_labels += pr.implausible_labels;
        if (pr.sample) {
          ds.samples.push_back(std::move(*pr.sample));
        } else {
          rep.quarantined.push_back(configs[i]);
        }
      });
  rep.generated = ds.samples.size();
  if (report) *report = std::move(rep);
  return ds;
}

Task make_task(const Dataset& dataset, const std::vector<size_t>& support_idx,
               const std::vector<size_t>& query_idx, TargetMetric target) {
  if (dataset.empty()) throw std::invalid_argument("make_task: empty dataset");
  const size_t n_feat = dataset.samples.front().features.size();
  const size_t width = target_width(target);
  auto build = [&](const std::vector<size_t>& idx) {
    std::vector<float> xs;
    std::vector<float> ys;
    xs.reserve(idx.size() * n_feat);
    ys.reserve(idx.size() * width);
    for (size_t i : idx) {
      const Sample& s = dataset.samples.at(i);
      xs.insert(xs.end(), s.features.begin(), s.features.end());
      const auto y = target_of(s, target);
      ys.insert(ys.end(), y.begin(), y.end());
    }
    return std::pair{tensor::Tensor::from_vector({idx.size(), n_feat},
                                                 std::move(xs)),
                     tensor::Tensor::from_vector({idx.size(), width},
                                                 std::move(ys))};
  };
  Task t;
  std::tie(t.support_x, t.support_y) = build(support_idx);
  std::tie(t.query_x, t.query_y) = build(query_idx);
  return t;
}

TaskSampler::TaskSampler(const Dataset& dataset, size_t support, size_t query,
                         TargetMetric target)
    : dataset_(&dataset), support_(support), query_(query), target_(target) {
  if (support == 0 || query == 0) {
    throw std::invalid_argument("TaskSampler: support and query must be > 0");
  }
  if (support + query > dataset.size()) {
    throw std::invalid_argument(
        "TaskSampler: support+query (" + std::to_string(support + query) +
        ") exceeds dataset size (" + std::to_string(dataset.size()) + ")");
  }
}

Task TaskSampler::sample(Rng& rng) const {
  std::vector<size_t> idx(dataset_->size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  std::vector<size_t> sup(idx.begin(), idx.begin() + support_);
  std::vector<size_t> qry(idx.begin() + support_,
                          idx.begin() + support_ + query_);
  return make_task(*dataset_, sup, qry, target_);
}

Task TaskSampler::split_all(Rng& rng) const {
  std::vector<size_t> idx(dataset_->size());
  std::iota(idx.begin(), idx.end(), 0);
  rng.shuffle(idx);
  std::vector<size_t> sup(idx.begin(), idx.begin() + support_);
  std::vector<size_t> qry(idx.begin() + support_, idx.end());
  return make_task(*dataset_, sup, qry, target_);
}

void Scaler::fit(const std::vector<std::vector<float>>& rows) {
  if (rows.empty()) throw std::invalid_argument("Scaler::fit: no rows");
  const size_t w = rows.front().size();
  const auto finite_row = [](const std::vector<float>& r) {
    for (float x : r) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  mean_.assign(w, 0.0F);
  std_.assign(w, 0.0F);
  size_t kept = 0;
  for (const auto& r : rows) {
    if (r.size() != w) throw std::invalid_argument("Scaler::fit: ragged rows");
    if (!finite_row(r)) continue;
    for (size_t j = 0; j < w; ++j) mean_[j] += r[j];
    ++kept;
  }
  if (kept == 0) {
    mean_.clear();
    std_.clear();
    throw std::invalid_argument("Scaler::fit: no finite rows");
  }
  for (auto& m : mean_) m /= static_cast<float>(kept);
  for (const auto& r : rows) {
    if (!finite_row(r)) continue;
    for (size_t j = 0; j < w; ++j) {
      const float d = r[j] - mean_[j];
      std_[j] += d * d;
    }
  }
  for (auto& s : std_) {
    s = std::sqrt(s / static_cast<float>(kept));
    if (s < 1e-8F) s = 1.0F;  // constant column: identity scale
  }
}

void Scaler::fit(const std::vector<Dataset>& datasets, TargetMetric target) {
  std::vector<std::vector<float>> rows;
  for (const auto& ds : datasets) {
    for (const auto& s : ds.samples) rows.push_back(target_of(s, target));
  }
  fit(rows);
}

std::vector<float> Scaler::transform(const std::vector<float>& row) const {
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("Scaler::transform: width mismatch");
  }
  std::vector<float> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

std::vector<float> Scaler::inverse(const std::vector<float>& row) const {
  if (row.size() != mean_.size()) {
    throw std::invalid_argument("Scaler::inverse: width mismatch");
  }
  std::vector<float> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = row[j] * std_[j] + mean_[j];
  }
  return out;
}

tensor::Tensor Scaler::transform(const tensor::Tensor& y) const {
  if (y.rank() != 2 || y.dim(1) != mean_.size()) {
    throw std::invalid_argument("Scaler::transform: expected [n, width]");
  }
  std::vector<float> out = y.data();
  const size_t w = mean_.size();
  for (size_t i = 0; i < y.dim(0); ++i) {
    for (size_t j = 0; j < w; ++j) {
      out[i * w + j] = (out[i * w + j] - mean_[j]) / std_[j];
    }
  }
  return tensor::Tensor::from_vector(y.shape(), std::move(out));
}

tensor::Tensor Scaler::inverse(const tensor::Tensor& y) const {
  if (y.rank() != 2 || y.dim(1) != mean_.size()) {
    throw std::invalid_argument("Scaler::inverse: expected [n, width]");
  }
  std::vector<float> out = y.data();
  const size_t w = mean_.size();
  for (size_t i = 0; i < y.dim(0); ++i) {
    for (size_t j = 0; j < w; ++j) {
      out[i * w + j] = out[i * w + j] * std_[j] + mean_[j];
    }
  }
  return tensor::Tensor::from_vector(y.shape(), std::move(out));
}

void write_csv(const Dataset& dataset, const arch::DesignSpace& space,
               const std::string& path) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("write_csv: cannot open " + path);
  for (const auto& spec : space.specs()) os << spec.name << ",";
  os << "ipc,power\n";
  for (const auto& s : dataset.samples) {
    const auto vals = space.values_of(s.config);
    for (double v : vals) os << v << ",";
    os << s.ipc << "," << s.power << "\n";
  }
  if (!os) throw std::runtime_error("write_csv: write failed: " + path);
}

}  // namespace metadse::data
