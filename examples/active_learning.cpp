// Uncertainty-aware adaptation (extension beyond the paper): spend the
// K-simulation budget on the design points the adapted ensemble is least
// sure about, instead of random ones, and compare the resulting predictors
// at the same budget.
#include <cstdio>

#include "core/metadse.hpp"
#include "eval/metrics.hpp"
#include "meta/ensemble_adapt.hpp"

using namespace metadse;

int main() {
  const char* target = "620.omnetpp_s";
  const size_t budget = 12;  // simulations we may spend on the new workload

  core::FrameworkOptions opts;
  opts.samples_per_workload = 800;
  opts.maml.epochs = 3;
  opts.maml.tasks_per_workload = 20;
  core::MetaDseFramework fw(opts);
  if (!fw.load_checkpoint("bench_metadse_ipc_s5.ckpt") &&
      !fw.load_checkpoint("example_metadse.ckpt")) {
    std::printf("pre-training surrogate (no checkpoint found)...\n");
    fw.pretrain();
  }

  const auto& wl = fw.suite().by_name(target);
  data::DatasetGenerator gen(fw.space());
  tensor::Rng rng(11);
  const auto pool = fw.space().sample_latin_hypercube(200, rng);
  auto oracle = [&](const arch::Config& c) { return gen.evaluate(c, wl); };

  // (a) Active selection: ensemble disagreement picks the support set.
  meta::EnsembleAdaptOptions ens_opts;
  ens_opts.n_members = 4;
  ens_opts.adapt = fw.options().adapt;
  const auto active_support = meta::select_support_actively(
      fw.model(), fw.wam_mask(), fw.scaler(), fw.space(), pool, oracle,
      budget, ens_opts);
  auto active_pred = fw.adapt_to(active_support);

  // (b) Random selection at the same budget.
  data::Dataset random_support = gen.generate(wl, budget, rng);
  random_support.workload = target;
  auto random_pred = fw.adapt_to(random_support);

  // Evaluate both on a held-out query sample.
  const auto query = gen.generate(wl, 150, rng);
  std::vector<float> actual;
  std::vector<float> pa;
  std::vector<float> pr;
  for (const auto& s : query.samples) {
    actual.push_back(s.ipc);
    pa.push_back(active_pred.predict(s.features));
    pr.push_back(random_pred.predict(s.features));
  }
  const double rmse_active = eval::rmse(actual, pa);
  const double rmse_random = eval::rmse(actual, pr);
  std::printf("target %s, %zu-simulation budget, 150 query points:\n",
              target, budget);
  std::printf("  random support  RMSE %.4f\n", rmse_random);
  std::printf("  active support  RMSE %.4f (%+.1f%%)\n", rmse_active,
              100.0 * (rmse_active / rmse_random - 1.0));
  std::printf("\n(active selection spends simulations where the adapted "
              "ensemble disagrees most —\n typically at the design-space "
              "extremes the random support never covers)\n");
  return 0;
}
