// Production pipeline example: meta-train once, save the checkpoint, and
// inspect the generated Workload-adaptive Architectural Mask — which
// architectural-parameter interactions the attention considers load-bearing
// across workloads.
#include <algorithm>
#include <cstdio>

#include "core/metadse.hpp"

using namespace metadse;

int main() {
  core::FrameworkOptions opts;
  opts.samples_per_workload = 800;
  opts.maml.epochs = 4;
  opts.maml.tasks_per_workload = 24;
  opts.maml.verbose = true;  // epoch progress on stderr
  core::MetaDseFramework fw(opts);

  const std::string ckpt = "example_metadse.ckpt";
  if (fw.load_checkpoint(ckpt)) {
    std::printf("loaded existing checkpoint %s\n", ckpt.c_str());
  } else {
    std::printf("meta-training (progress on stderr)...\n");
    fw.pretrain();
    fw.save_checkpoint(ckpt);
    std::printf("saved checkpoint to %s\n", ckpt.c_str());
  }

  // Inspect the WAM: how sparse is it, and which interactions survive?
  const auto& mask = fw.wam_mask();
  const auto& specs = fw.space().specs();
  const size_t n = mask.dim(0);
  size_t kept = 0;
  for (float v : mask.data()) kept += v == 1.0F;
  std::printf("\nWAM: %zu x %zu, %zu/%zu interactions kept (%.0f%%)\n", n, n,
              kept, n * n, 100.0 * kept / (n * n));

  // The strongest off-diagonal interactions, by parameter name.
  struct Inter {
    size_t from, to;
  };
  std::vector<Inter> kept_pairs;
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) {
      if (r != c && mask.at({r, c}) == 1.0F) kept_pairs.push_back({r, c});
    }
  }
  std::printf("sample of retained parameter interactions (query <- key):\n");
  for (size_t i = 0; i < std::min<size_t>(12, kept_pairs.size()); ++i) {
    std::printf("  %-18s <- %s\n", specs[kept_pairs[i].from].name.c_str(),
                specs[kept_pairs[i].to].name.c_str());
  }

  // Verify the checkpoint round-trips: a fresh framework produces the same
  // adapted predictions.
  core::MetaDseFramework fresh(opts);
  if (!fresh.load_checkpoint(ckpt)) {
    std::printf("checkpoint reload failed!\n");
    return 1;
  }
  const auto& ds = fw.dataset("627.cam4_s");
  data::Dataset support;
  support.workload = ds.workload;
  for (size_t i = 0; i < 10; ++i) support.samples.push_back(ds.samples[i]);
  const auto a = fw.adapt_to(support);
  const auto b = fresh.adapt_to(support);
  const float pa = a.predict(ds.samples[50].features);
  const float pb = b.predict(ds.samples[50].features);
  std::printf("\nadapted prediction (original vs reloaded): %.5f vs %.5f\n",
              pa, pb);
  std::printf("round-trip %s\n",
              std::abs(pa - pb) < 1e-4F ? "OK" : "MISMATCH");
  return 0;
}
