// Quickstart: the MetaDSE pipeline end to end in ~40 lines of user code.
//   1. Build the framework (design space + workload suite + simulator).
//   2. Meta-train the surrogate on the source workloads (Algorithm 1).
//   3. Adapt to an unseen workload from 10 labelled samples (Algorithm 2).
//   4. Predict IPC for new design points and compare to the simulator.
//
// Run time is dominated by step 2 (~1 minute at this reduced scale).
#include <cstdio>

#include "core/metadse.hpp"

using namespace metadse;

int main() {
  // 1. Framework with a reduced training schedule for a fast first run.
  core::FrameworkOptions opts;
  opts.samples_per_workload = 800;
  opts.maml.epochs = 3;
  opts.maml.tasks_per_workload = 20;
  core::MetaDseFramework fw(opts);
  std::printf("design space: %zu parameters, %.2e design points\n",
              fw.space().num_params(), fw.space().total_points());

  // 2. Meta-train on the 7 source workloads (5 validation workloads steer
  //    epoch selection). The WAM is generated from the attention maps.
  std::printf("meta-training on source workloads...\n");
  fw.pretrain();
  std::printf("done; meta-val loss %.4f -> %.4f over %zu epochs\n",
              fw.trace().front().val_loss, fw.trace().back().val_loss,
              fw.trace().size());

  // 3. Adapt to 605.mcf_s — a *test* workload the model never saw —
  //    using only K=10 labelled design points.
  const auto& mcf = fw.dataset("605.mcf_s");
  data::Dataset support;
  support.workload = mcf.workload;
  for (size_t i = 0; i < 10; ++i) support.samples.push_back(mcf.samples[i]);
  const auto predictor = fw.adapt_to(support);
  std::printf("adapted to %s from %zu samples\n", support.workload.c_str(),
              support.size());

  // 4. Predict unseen design points and compare with the simulator.
  std::printf("\n%-8s %-10s %-10s\n", "point", "predicted", "simulated");
  double abs_err = 0.0;
  const size_t n_eval = 10;
  for (size_t i = 0; i < n_eval; ++i) {
    const auto& s = mcf.samples[100 + i];
    const float pred = predictor.predict(s.features);
    std::printf("%-8zu %-10.4f %-10.4f\n", i, pred, s.ipc);
    abs_err += std::abs(pred - s.ipc);
  }
  std::printf("\nmean absolute error: %.4f IPC (on a ~0.1-1.5 IPC scale)\n",
              abs_err / n_eval);
  return 0;
}
