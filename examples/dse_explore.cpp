// Design-space exploration with an adapted predictor — the downstream use
// case that motivates the paper. A designer has a new workload and a budget
// of 10 simulations:
//   1. Simulate 10 design points (the support set).
//   2. Adapt the meta-trained predictor to the workload.
//   3. Screen thousands of candidate configurations with the predictor.
//   4. Validate only the predicted-best candidates in the simulator,
//      subject to a power budget.
#include <algorithm>
#include <cstdio>

#include "core/metadse.hpp"

using namespace metadse;

int main() {
  const char* target_workload = "623.xalancbmk_s";
  const double power_budget = 8.0;  // watts (model units)

  core::FrameworkOptions opts;
  opts.samples_per_workload = 800;
  opts.maml.epochs = 3;
  opts.maml.tasks_per_workload = 20;
  core::MetaDseFramework fw(opts);

  // Reuse the bench checkpoint when present; otherwise train here.
  if (!fw.load_checkpoint("bench_metadse_ipc_s5.ckpt")) {
    std::printf("pre-training surrogate (no checkpoint found)...\n");
    fw.pretrain();
  }

  // The 10-simulation budget: one LHS batch through the simulator.
  const auto& space = fw.space();
  data::DatasetGenerator gen(space);
  const auto& wl = fw.suite().by_name(target_workload);
  tensor::Rng rng(42);
  data::Dataset support = gen.generate(wl, 10, rng);
  support.workload = target_workload;
  const auto predictor = fw.adapt_to(support);
  std::printf("adapted to %s with 10 simulations\n", target_workload);

  // Screen a large candidate set with the cheap predictor.
  const size_t n_candidates = 4000;
  const auto candidates = space.sample_latin_hypercube(n_candidates, rng);
  struct Scored {
    arch::Config config;
    float predicted_ipc;
  };
  std::vector<Scored> scored;
  scored.reserve(n_candidates);
  for (const auto& c : candidates) {
    scored.push_back({c, predictor.predict(space.normalize(c))});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.predicted_ipc > b.predicted_ipc;
            });

  // Validate the predicted-best candidates under the power budget.
  std::printf("\nvalidating top candidates (power budget %.1f W):\n",
              power_budget);
  std::printf("%-6s %-10s %-10s %-10s %-8s\n", "rank", "predicted",
              "simulated", "power", "feasible");
  size_t shown = 0;
  double best_feasible = 0.0;
  for (size_t i = 0; i < scored.size() && shown < 10; ++i) {
    const auto [ipc, power] = gen.evaluate(scored[i].config, wl);
    const bool ok = power <= power_budget;
    std::printf("%-6zu %-10.4f %-10.4f %-10.2f %s\n", i + 1,
                scored[i].predicted_ipc, ipc, power, ok ? "yes" : "no");
    if (ok) best_feasible = std::max(best_feasible, ipc);
    ++shown;
  }

  // Reference: the best of a same-size random sample of simulations
  // (what the 10-simulation budget would find without the predictor).
  double random_best = 0.0;
  for (const auto& s : support.samples) {
    random_best = std::max(random_best, static_cast<double>(s.ipc));
  }
  std::printf("\nbest feasible IPC found via predictor screening: %.4f\n",
              best_feasible);
  std::printf("best IPC among the 10 raw simulations alone:      %.4f\n",
              random_best);
  return 0;
}
