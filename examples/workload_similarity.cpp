// Workload similarity analysis (the motivation study behind Fig. 2): given a
// target workload, measure its Wasserstein distance to every source workload,
// inspect its SimPoint-style phase structure, and show why similarity-based
// transfer is fragile — the nearest source changes with the metric used.
#include <algorithm>
#include <cstdio>

#include "data/dataset.hpp"
#include "eval/metrics.hpp"

using namespace metadse;

namespace {

std::vector<float> labels(const data::Dataset& ds, data::TargetMetric m) {
  std::vector<float> out;
  for (const auto& s : ds.samples) {
    out.push_back(data::target_of(s, m).front());
  }
  return out;
}

}  // namespace

int main() {
  const char* target = "620.omnetpp_s";
  workload::SpecSuite suite;
  const auto& space = arch::DesignSpace::table1();
  data::DatasetGenerator gen(space);

  // Shared design points so distributions are comparable.
  tensor::Rng rng(9);
  const size_t n = 500;

  std::printf("phase structure of %s (SimPoint substitute):\n", target);
  const auto& wl = suite.by_name(target);
  std::printf("  %zu phases; weight range [", wl.phases().size());
  double wmin = 1.0;
  double wmax = 0.0;
  for (const auto& p : wl.phases()) {
    wmin = std::min(wmin, p.weight);
    wmax = std::max(wmax, p.weight);
  }
  std::printf("%.3f, %.3f]\n\n", wmin, wmax);

  data::Dataset target_ds = gen.generate(wl, n, rng);

  struct Entry {
    std::string name;
    double d_ipc;
    double d_power;
  };
  std::vector<Entry> entries;
  for (const auto& name : suite.names(workload::SplitRole::kTrain)) {
    tensor::Rng r2(9);  // same configs as the target sample
    auto src = gen.generate(suite.by_name(name), n, r2);
    entries.push_back(
        {name,
         eval::wasserstein1(labels(src, data::TargetMetric::kIpc),
                            labels(target_ds, data::TargetMetric::kIpc)),
         eval::wasserstein1(labels(src, data::TargetMetric::kPower),
                            labels(target_ds, data::TargetMetric::kPower))});
  }

  std::printf("Wasserstein distance from %s to each source workload:\n",
              target);
  std::printf("%-20s %-12s %-12s\n", "source", "W1(IPC)", "W1(power)");
  for (const auto& e : entries) {
    std::printf("%-20s %-12.4f %-12.4f\n", e.name.c_str(), e.d_ipc,
                e.d_power);
  }

  const auto by_ipc = std::min_element(
      entries.begin(), entries.end(),
      [](const Entry& a, const Entry& b) { return a.d_ipc < b.d_ipc; });
  const auto by_power = std::min_element(
      entries.begin(), entries.end(),
      [](const Entry& a, const Entry& b) { return a.d_power < b.d_power; });
  std::printf("\nnearest source by IPC:   %s\n", by_ipc->name.c_str());
  std::printf("nearest source by power: %s\n", by_power->name.c_str());
  if (by_ipc->name != by_power->name) {
    std::printf("-> similarity is metric-dependent: transfer based on one "
                "metric's similarity can mislead another (the paper's "
                "motivation for WAM).\n");
  }
  return 0;
}
