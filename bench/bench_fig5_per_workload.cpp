// Reproduces paper Fig. 5: per-workload IPC RMSE of TrEnDSE,
// TrEnDSE-Transformer, MetaDSE-w/o-WAM, and MetaDSE on the five test
// workloads, plus the GEOMEAN column and the headline reduction vs TrEnDSE.
// Expected shape: MetaDSE < MetaDSE-w/o-WAM < TrEnDSE-Transformer ~ TrEnDSE.
#include <cstdio>

#include "bench_common.hpp"

using namespace metadse;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  std::printf("== Fig. 5: IPC RMSE per workload vs the SOTA cross-workload "
              "DSE framework ==\n");
  std::printf("(downstream adaptation: K=10 support samples, 45 query; "
              "%zu tasks per workload%s)\n\n",
              scale.eval_tasks, scale.paper ? " [paper scale]" : "");

  auto fw_opts = bench::framework_options(scale, data::TargetMetric::kIpc,
                                          /*upstream_support=*/5);
  core::MetaDseFramework fw(fw_opts);
  bench::pretrain_or_load(fw, "bench_metadse_ipc_s5.ckpt");

  const auto sources =
      fw.datasets(fw.suite().names(workload::SplitRole::kTrain));
  const size_t K = 10;
  const size_t Q = 45;

  eval::TextTable table({"workload", "TrEnDSE", "TrEnDSE-Transformer",
                         "MetaDSE-w/o-WAM", "MetaDSE"});
  std::vector<double> g_trendse, g_trt, g_nowam, g_meta;

  for (const auto& wl : bench::test_workloads()) {
    const auto& target = fw.dataset(wl);

    // TrEnDSE (ensemble + Wasserstein sample transfer), refit per task.
    auto trendse = bench::evaluate_classic(
        target, scale.eval_tasks, K, Q, data::TargetMetric::kIpc, 101,
        [&](const data::Dataset& sup, const baselines::FeatureMatrix& qx) {
          baselines::TrEnDse model;
          model.fit(sources, sup, data::TargetMetric::kIpc);
          return model.predict_batch(qx);
        });

    // TrEnDSE-Transformer (same transfer policy, transformer predictor).
    baselines::TrEnDseTransformerOptions trt_opts;
    trt_opts.predictor = fw.options().predictor;
    trt_opts.epochs = scale.paper ? 40 : 8;
    auto trt = bench::evaluate_classic(
        target, scale.eval_tasks_expensive, K, Q, data::TargetMetric::kIpc,
        102,
        [&](const data::Dataset& sup, const baselines::FeatureMatrix& qx) {
          baselines::TrEnDseTransformer model(trt_opts);
          model.fit(sources, sup, data::TargetMetric::kIpc);
          return model.predict_batch(qx);
        });

    // MetaDSE ablation (no WAM) and full MetaDSE.
    tensor::Rng rng_a(103);
    tensor::Rng rng_b(103);  // same tasks for a paired comparison
    double nowam_sum = 0.0;
    for (const auto& e : fw.evaluate(wl, scale.eval_tasks, K, Q, false, rng_a))
      nowam_sum += e.rmse;
    double meta_sum = 0.0;
    for (const auto& e : fw.evaluate(wl, scale.eval_tasks, K, Q, true, rng_b))
      meta_sum += e.rmse;

    const double r_trendse = eval::mean_ci(trendse.rmse).mean;
    const double r_trt = eval::mean_ci(trt.rmse).mean;
    const double r_nowam = nowam_sum / scale.eval_tasks;
    const double r_meta = meta_sum / scale.eval_tasks;
    g_trendse.push_back(r_trendse);
    g_trt.push_back(r_trt);
    g_nowam.push_back(r_nowam);
    g_meta.push_back(r_meta);
    table.add_row({wl, eval::fmt(r_trendse), eval::fmt(r_trt),
                   eval::fmt(r_nowam), eval::fmt(r_meta)});
  }

  const double gm_trendse = eval::geomean(g_trendse);
  const double gm_trt = eval::geomean(g_trt);
  const double gm_nowam = eval::geomean(g_nowam);
  const double gm_meta = eval::geomean(g_meta);
  table.add_row({"GEOMEAN", eval::fmt(gm_trendse), eval::fmt(gm_trt),
                 eval::fmt(gm_nowam), eval::fmt(gm_meta)});
  std::printf("%s\n", table.render().c_str());

  std::printf("MetaDSE vs TrEnDSE: %.1f%% RMSE reduction "
              "(paper reports 44.3%%)\n",
              100.0 * (1.0 - gm_meta / gm_trendse));
  std::printf("WAM contribution (vs MetaDSE-w/o-WAM): %.1f%% reduction "
              "(paper reports 27%%)\n",
              100.0 * (1.0 - gm_meta / gm_nowam));
  return 0;
}
