// Ablation: WAM design choices (not a paper artifact, but the design study
// behind DESIGN.md's WAM parameters). Sweeps mask mode (none / binary /
// continuous), suppression floor, and the mask learning-rate scale, on the
// five test workloads, reusing the shared pre-trained checkpoint.
#include <cstdio>

#include "bench_common.hpp"
#include "meta/wam.hpp"

using namespace metadse;

namespace {

struct Variant {
  const char* name;
  bool use_wam;
  meta::WamMode mode;
  float suppressed;
  double keep_fraction;
  float mask_lr_scale;
  bool learn_mask;
  bool all_layers = true;
  float adapt_lr = 1e-2F;
};

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  std::printf("== Ablation: WAM design choices (IPC, K=10, %zu tasks/wl) ==\n\n",
              scale.eval_tasks);

  auto fw_opts = bench::framework_options(scale, data::TargetMetric::kIpc, 5);
  core::MetaDseFramework fw(fw_opts);
  bench::pretrain_or_load(fw, "bench_metadse_ipc_s5.ckpt");

  const std::vector<Variant> variants{
      {"no mask (plain adaptation)", false, meta::WamMode::kBinary, 1.0F, 1.0,
       1.0F, false},
      {"binary keep=0.35 floor=0.15, last layer", true,
       meta::WamMode::kBinary, 0.15F, 0.35, 4.0F, true, false},
      {"binary keep=0.5 floor=0.5, last layer", true, meta::WamMode::kBinary,
       0.5F, 0.5, 4.0F, true, false},
      {"continuous floor=0.5, last layer", true, meta::WamMode::kContinuous,
       0.5F, 0.35, 4.0F, true, false},
      {"continuous floor=0.5, all layers", true, meta::WamMode::kContinuous,
       0.5F, 0.35, 4.0F, true},
      {"continuous floor=0.7, all layers (default)", true,
       meta::WamMode::kContinuous, 0.7F, 0.35, 4.0F, true},
      {"continuous floor=0.3, all layers", true, meta::WamMode::kContinuous,
       0.3F, 0.35, 4.0F, true},
      {"continuous floor=0.5, frozen mask", true, meta::WamMode::kContinuous,
       0.5F, 0.35, 1.0F, false},
      // Aggressive-adaptation regime: without the mask the 10 steps overfit
      // the support set; the WAM's regularization becomes clearly visible.
      {"no mask, adapt-lr 3e-2", false, meta::WamMode::kBinary, 1.0F, 1.0,
       1.0F, false, true, 3e-2F},
      {"continuous floor=0.5, adapt-lr 3e-2", true,
       meta::WamMode::kContinuous, 0.5F, 0.35, 4.0F, true, true, 3e-2F},
  };

  eval::TextTable t({"variant", "GEOMEAN RMSE", "vs no-mask"});
  double base_rmse = 0.0;
  double aggressive_base = 0.0;
  for (const auto& v : variants) {
    meta::WamOptions wo;
    wo.mode = v.mode;
    wo.suppressed_value = v.suppressed;
    wo.keep_fraction = v.keep_fraction;
    fw.regenerate_wam(wo);

    meta::AdaptOptions ao;  // defaults: 10 steps, cosine annealing
    ao.learn_mask = v.learn_mask;
    ao.mask_lr_scale = v.mask_lr_scale;
    ao.mask_all_layers = v.all_layers;
    ao.lr = v.adapt_lr;
    fw.set_adapt_options(ao);

    std::vector<double> per_wl;
    for (const auto& wl : bench::test_workloads()) {
      tensor::Rng rng(601);
      // Temporarily adjust the adapt options via const_cast-free path:
      // MetaDseFramework applies options().adapt in adapt_task; we pass the
      // variant's learn/scale through a framework clone of options.
      auto evals = fw.evaluate(wl, scale.eval_tasks, 10, 45, v.use_wam, rng);
      double s = 0.0;
      for (const auto& e : evals) s += e.rmse;
      per_wl.push_back(s / evals.size());
    }
    const double gm = eval::geomean(per_wl);
    if (!v.use_wam && v.adapt_lr < 2e-2F) base_rmse = gm;
    if (!v.use_wam && v.adapt_lr >= 2e-2F) aggressive_base = gm;
    const double ref = v.adapt_lr >= 2e-2F && aggressive_base > 0.0
                           ? aggressive_base
                           : base_rmse;
    t.add_row({v.name, eval::fmt(gm),
               ref > 0.0 ? eval::fmt(100.0 * (1.0 - gm / ref), 1) + "%"
                         : "-"});
    std::printf("  %-36s rmse %.4f\n", v.name, gm);
  }
  std::printf("\n%s\n", t.render().c_str());
  return 0;
}
