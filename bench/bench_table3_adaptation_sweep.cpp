// Reproduces paper Table III: IPC RMSE as the *downstream* adaptation
// support size K sweeps 5..40, with the upstream support fixed at 10.
// Rows: RF, GBRT, Baseline (TrEnDSE), MetaDSE. Expected shape: MetaDSE is
// best at every K and nearly flat (high performance even with little
// adaptation data); the classical models improve slowly with K.
#include <cstdio>

#include "bench_common.hpp"

using namespace metadse;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  std::printf("== Table III: IPC RMSE vs downstream adaptation support size "
              "K (upstream fixed at 10) ==\n\n");

  auto fw_opts = bench::framework_options(scale, data::TargetMetric::kIpc,
                                          /*upstream_support=*/10);
  core::MetaDseFramework fw(fw_opts);
  bench::pretrain_or_load(fw, "bench_metadse_ipc_s10.ckpt");
  const auto sources =
      fw.datasets(fw.suite().names(workload::SplitRole::kTrain));

  const std::vector<size_t> ks{5, 10, 20, 30, 40};
  std::vector<std::vector<double>> rows(4);  // rf, gbrt, trendse, metadse

  for (const size_t K : ks) {
    std::vector<double> rf, gbrt, trendse, meta;
    for (const auto& wl : bench::test_workloads()) {
      const auto& target = fw.dataset(wl);
      auto rf_ev = bench::evaluate_classic(
          target, scale.eval_tasks, K, 45, data::TargetMetric::kIpc, 401,
          [&](const data::Dataset& sup, const baselines::FeatureMatrix& qx) {
            baselines::FeatureMatrix x;
            std::vector<float> y;
            bench::pooled_training_set(sources, sup,
                                       data::TargetMetric::kIpc, 60, 6, 7, x,
                                       y);
            baselines::RandomForest model(
                baselines::ForestOptions{.n_trees = 40});
            model.fit(x, y);
            return model.predict_batch(qx);
          });
      auto gb_ev = bench::evaluate_classic(
          target, scale.eval_tasks, K, 45, data::TargetMetric::kIpc, 402,
          [&](const data::Dataset& sup, const baselines::FeatureMatrix& qx) {
            baselines::FeatureMatrix x;
            std::vector<float> y;
            bench::pooled_training_set(sources, sup,
                                       data::TargetMetric::kIpc, 60, 6, 7, x,
                                       y);
            baselines::Gbrt model;
            model.fit(x, y);
            return model.predict_batch(qx);
          });
      auto tr_ev = bench::evaluate_classic(
          target, scale.eval_tasks, K, 45, data::TargetMetric::kIpc, 403,
          [&](const data::Dataset& sup, const baselines::FeatureMatrix& qx) {
            baselines::TrEnDse model;
            model.fit(sources, sup, data::TargetMetric::kIpc);
            return model.predict_batch(qx);
          });
      rf.insert(rf.end(), rf_ev.rmse.begin(), rf_ev.rmse.end());
      gbrt.insert(gbrt.end(), gb_ev.rmse.begin(), gb_ev.rmse.end());
      trendse.insert(trendse.end(), tr_ev.rmse.begin(), tr_ev.rmse.end());

      tensor::Rng rng(404);
      for (const auto& e : fw.evaluate(wl, scale.eval_tasks, K, 45, true,
                                       rng)) {
        meta.push_back(e.rmse);
      }
    }
    rows[0].push_back(eval::mean_ci(rf).mean);
    rows[1].push_back(eval::mean_ci(gbrt).mean);
    rows[2].push_back(eval::mean_ci(trendse).mean);
    rows[3].push_back(eval::mean_ci(meta).mean);
    std::printf("  K=%-2zu done\n", K);
  }

  std::vector<std::string> header{"models / K"};
  for (size_t k : ks) header.push_back(std::to_string(k));
  eval::TextTable t(header);
  const char* names[4] = {"RF", "GBRT", "Baseline (TrEnDSE)", "MetaDSE"};
  for (size_t m = 0; m < 4; ++m) {
    std::vector<std::string> row{names[m]};
    for (double v : rows[m]) row.push_back(eval::fmt(v));
    t.add_row(std::move(row));
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf("MetaDSE at K=5 vs best classical at K=40: %.4f vs %.4f "
              "(paper: MetaDSE leads at every K)\n",
              rows[3].front(),
              std::min({rows[0].back(), rows[1].back(), rows[2].back()}));
  return 0;
}
