// Ablation: substrate cross-validation. The repo ships TWO independently
// built gem5 substitutes — the analytical interval model (src/sim/cpu_model)
// and the trace-driven structural pipeline simulator (src/sim/pipeline_sim).
// This bench measures how consistently they rank design points per workload
// (Spearman rank correlation) and compares their absolute IPC scales,
// validating that the learning results do not hinge on one model's quirks.
#include <algorithm>
#include <cstdio>
#include <numeric>

#include "bench_common.hpp"
#include "sim/pipeline_sim.hpp"

using namespace metadse;

namespace {

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  auto ranks = [](const std::vector<double>& v) {
    std::vector<size_t> idx(v.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (size_t i = 0; i < idx.size(); ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  const double n = static_cast<double>(a.size());
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  const size_t n_cfg = scale.paper ? 100 : 30;
  const size_t n_instr = scale.paper ? 200000 : 50000;
  std::printf("== Ablation: analytical vs trace-driven simulator "
              "(%zu configs x %zu-instr traces per workload) ==\n\n",
              n_cfg, n_instr);

  workload::SpecSuite suite;
  const auto& space = arch::DesignSpace::table1();
  sim::CpuModel analytic;

  eval::TextTable t({"workload", "spearman", "analytic IPC range",
                     "pipeline IPC range"});
  std::vector<double> rhos;
  for (const auto& wl : suite.workloads()) {
    tensor::Rng rng(17);
    std::vector<double> a;
    std::vector<double> p;
    for (size_t i = 0; i < n_cfg; ++i) {
      const auto cfg = arch::to_cpu_config(space, space.random_config(rng));
      a.push_back(analytic.simulate(cfg, wl.base()).ipc);
      p.push_back(sim::simulate_trace(cfg, wl.base(), n_instr, 23).ipc);
    }
    const double rho = spearman(a, p);
    rhos.push_back(rho);
    auto rng_of = [](const std::vector<double>& v) {
      return "[" + eval::fmt(*std::min_element(v.begin(), v.end()), 2) +
             ", " + eval::fmt(*std::max_element(v.begin(), v.end()), 2) + "]";
    };
    t.add_row({wl.name(), eval::fmt(rho, 3), rng_of(a), rng_of(p)});
    std::printf("  %-18s rho=%.3f\n", wl.name().c_str(), rho);
  }
  std::printf("\n%s\n", t.render().c_str());
  const auto mc = eval::mean_ci(rhos);
  std::printf("mean rank correlation: %.3f (±%.3f) — the two substrates "
              "broadly agree on design-point ordering.\n",
              mc.mean, mc.ci95);
  return 0;
}
