// Reproduces paper Fig. 2: pairwise Wasserstein distances among the SPEC CPU
// 2017 workloads' IPC distributions over a shared set of design points. The
// paper's point: similarity is inconsistent across workloads — many pairs are
// far apart, undermining similarity-based transfer.
#include <cstdio>

#include "bench_common.hpp"
#include "workload/spec_suite.hpp"

using namespace metadse;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  std::printf("== Fig. 2: Wasserstein distances among SPEC CPU 2017 "
              "workloads ==\n");
  std::printf("(darker shading = larger distance = less similar; distances "
              "in IPC units)\n\n");

  workload::SpecSuite suite;
  const auto& space = arch::DesignSpace::table1();
  data::DatasetGenerator gen(space);

  // Shared design points: all workloads are evaluated on the same sample so
  // the label distributions are directly comparable (as in the paper).
  const size_t n = scale.paper ? 2000 : 400;
  tensor::Rng rng(12);
  const auto configs = space.sample_latin_hypercube(n, rng);

  std::vector<std::string> names;
  std::vector<std::vector<float>> labels;
  for (const auto& wl : suite.workloads()) {
    std::vector<float> y;
    y.reserve(n);
    for (const auto& c : configs) {
      y.push_back(static_cast<float>(gen.evaluate(c, wl).first));
    }
    names.push_back(wl.name());
    labels.push_back(std::move(y));
  }

  const size_t W = names.size();
  std::vector<std::vector<double>> dist(W, std::vector<double>(W, 0.0));
  double max_d = 0.0;
  double min_d = 1e300;
  for (size_t i = 0; i < W; ++i) {
    for (size_t j = 0; j < W; ++j) {
      dist[i][j] = eval::wasserstein1(labels[i], labels[j]);
      if (i != j) {
        max_d = std::max(max_d, dist[i][j]);
        min_d = std::min(min_d, dist[i][j]);
      }
    }
  }

  std::printf("%s\n", eval::render_heatmap(names, dist, 3).c_str());
  std::printf("off-diagonal distance range: [%.3f, %.3f]  (ratio %.1fx)\n",
              min_d, max_d, max_d / std::max(1e-9, min_d));

  // The paper's observation: similarity structure is inconsistent — report
  // each workload's nearest and farthest peer.
  std::printf("\nnearest / farthest peer per workload:\n");
  for (size_t i = 0; i < W; ++i) {
    size_t near = i == 0 ? 1 : 0;
    size_t far = near;
    for (size_t j = 0; j < W; ++j) {
      if (j == i) continue;
      if (dist[i][j] < dist[i][near]) near = j;
      if (dist[i][j] > dist[i][far]) far = j;
    }
    std::printf("  %-18s  nearest %-18s %.3f   farthest %-18s %.3f\n",
                names[i].c_str(), names[near].c_str(), dist[i][near],
                names[far].c_str(), dist[i][far]);
  }
  return 0;
}
