// Reproduces paper Fig. 6: sensitivity to the *upstream* support-set size.
// The downstream adaptation support is fixed at 10 while the pre-training
// support size sweeps 5..40. Expected shape: EV peaks / RMSE bottoms when
// the upstream size matches the downstream size (around 10), because the
// meta-learned initialization is tuned to the adaptation regime it will see.
#include <cstdio>

#include "bench_common.hpp"

using namespace metadse;

int main(int argc, char** argv) {
  auto scale = bench::Scale::parse(argc, argv);
  // Five full pre-trainings: use a reduced schedule unless --paper-scale.
  if (!scale.paper) {
    scale.epochs = std::min<size_t>(scale.epochs, 2);
    scale.tasks_per_workload = std::min<size_t>(scale.tasks_per_workload, 12);
    scale.eval_tasks = std::min<size_t>(scale.eval_tasks, 10);
  }
  std::printf("== Fig. 6: explained variance and RMSE vs upstream (source) "
              "support size ==\n");
  std::printf("(downstream support fixed at 10; %zu epochs x %zu tasks/wl "
              "per point)\n\n",
              scale.epochs, scale.tasks_per_workload);

  eval::TextTable t({"upstream support", "RMSE ↓", "EV ↑"});
  const size_t K_down = 10;
  double best_rmse = 1e9;
  size_t best_s = 0;
  for (const size_t s_up : {5, 10, 20, 30, 40}) {
    auto fw_opts =
        bench::framework_options(scale, data::TargetMetric::kIpc, s_up);
    core::MetaDseFramework fw(fw_opts);
    fw.pretrain();
    std::vector<double> rmse;
    std::vector<double> evs;
    for (const auto& wl : bench::test_workloads()) {
      tensor::Rng rng(301);
      for (const auto& e :
           fw.evaluate(wl, scale.eval_tasks, K_down, 45, true, rng)) {
        rmse.push_back(e.rmse);
        evs.push_back(e.ev);
      }
    }
    const double r = eval::mean_ci(rmse).mean;
    const double v = eval::mean_ci(evs).mean;
    if (r < best_rmse) {
      best_rmse = r;
      best_s = s_up;
    }
    t.add_row({std::to_string(s_up), eval::fmt(r), eval::fmt(v)});
    std::printf("  upstream s=%-2zu done (rmse %.4f, ev %.4f)\n", s_up, r, v);
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf("best upstream support: %zu (paper: best when upstream matches "
              "the downstream size of 10)\n",
              best_s);
  return 0;
}
