// Ablation: meta-learning algorithm choice. Compares the paper's FOMAML
// pre-training against Reptile, ANIL, joint supervised pre-training
// (pool all source workloads, then fine-tune), and no pre-training at all —
// isolating how much of MetaDSE's gain comes from the *meta* objective
// rather than from pre-training per se.
#include <cstdio>

#include "bench_common.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

using namespace metadse;

namespace {

/// Joint supervised pre-training on pooled source data (the classic
/// transfer-learning upstream stage the paper argues against).
std::unique_ptr<nn::TransformerRegressor> joint_pretrain(
    const std::vector<data::Dataset>& sources, const data::Scaler& scaler,
    const nn::TransformerConfig& cfg, size_t epochs, tensor::Rng& rng) {
  auto model = std::make_unique<nn::TransformerRegressor>(cfg, rng);
  std::vector<const data::Sample*> pool;
  for (const auto& ds : sources) {
    for (const auto& s : ds.samples) pool.push_back(&s);
  }
  nn::Adam opt(model->parameters(), 1e-3F);
  const size_t batch = 32;
  std::vector<size_t> order(pool.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t e = 0; e < epochs; ++e) {
    rng.shuffle(order);
    for (size_t start = 0; start + batch <= pool.size(); start += batch) {
      std::vector<float> bx;
      std::vector<float> by;
      for (size_t i = start; i < start + batch; ++i) {
        const auto* s = pool[order[i]];
        bx.insert(bx.end(), s->features.begin(), s->features.end());
        by.push_back(scaler.transform({s->ipc}).front());
      }
      auto x = tensor::Tensor::from_vector({batch, cfg.n_tokens},
                                           std::move(bx));
      auto y = tensor::Tensor::from_vector({batch, 1}, std::move(by));
      opt.zero_grad();
      tensor::mse_loss(model->forward(x, rng, true), y).backward();
      opt.step();
    }
  }
  return model;
}

/// Adapted-query RMSE (raw IPC units) of an initialization over test tasks.
double eval_init(const nn::TransformerRegressor& model,
                 const data::Scaler& scaler,
                 std::vector<data::Dataset>& targets, size_t n_tasks) {
  std::vector<double> rmse;
  for (auto& target : targets) {
    data::TaskSampler sampler(target, 10, 45, data::TargetMetric::kIpc);
    tensor::Rng rng(881);
    for (size_t k = 0; k < n_tasks; ++k) {
      auto task = sampler.sample(rng);
      auto sup_y = scaler.transform(task.support_y);
      auto adapted = meta::MamlTrainer::adapt_clone(model, task.support_x,
                                                    sup_y, 10, 1e-2F);
      tensor::Rng fwd(0);
      auto pred = scaler.inverse(adapted->forward(task.query_x, fwd));
      rmse.push_back(eval::rmse(task.query_y.data(), pred.data()));
    }
  }
  return eval::mean_ci(rmse).mean;
}

}  // namespace

int main(int argc, char** argv) {
  auto scale = bench::Scale::parse(argc, argv);
  if (!scale.paper) {
    scale.epochs = std::min<size_t>(scale.epochs, 3);
    scale.tasks_per_workload = std::min<size_t>(scale.tasks_per_workload, 16);
    scale.eval_tasks = std::min<size_t>(scale.eval_tasks, 10);
  }
  std::printf("== Ablation: upstream algorithm (FOMAML vs Reptile vs ANIL vs "
              "joint vs none) ==\n");
  std::printf("(%zu epochs x %zu tasks/wl; K=10 adaptation; %zu eval "
              "tasks/wl)\n\n",
              scale.epochs, scale.tasks_per_workload, scale.eval_tasks);

  // Shared datasets + label scaler.
  core::FrameworkOptions fo =
      bench::framework_options(scale, data::TargetMetric::kIpc, 5);
  core::MetaDseFramework fw(fo);
  auto train_sets = fw.datasets(fw.suite().names(workload::SplitRole::kTrain));
  auto val_sets =
      fw.datasets(fw.suite().names(workload::SplitRole::kValidation));
  std::vector<data::Dataset> targets;
  for (const auto& wl : bench::test_workloads()) {
    targets.push_back(fw.dataset(wl));
  }
  data::Scaler scaler;
  scaler.fit(train_sets, data::TargetMetric::kIpc);

  eval::TextTable t({"upstream", "IPC RMSE (K=10)"});

  auto run_meta = [&](const char* name, meta::MetaAlgorithm alg) {
    meta::MamlOptions mo = fo.maml;
    mo.algorithm = alg;
    meta::MamlTrainer trainer(fo.predictor, mo);
    trainer.train(train_sets, val_sets);
    const double r =
        eval_init(trainer.model(), trainer.scaler(), targets, scale.eval_tasks);
    t.add_row({name, eval::fmt(r)});
    std::printf("  %-22s rmse %.4f\n", name, r);
  };
  run_meta("FOMAML (paper)", meta::MetaAlgorithm::kFomaml);
  run_meta("Reptile", meta::MetaAlgorithm::kReptile);
  run_meta("ANIL", meta::MetaAlgorithm::kAnil);

  {
    tensor::Rng rng(7);
    auto joint = joint_pretrain(train_sets, scaler, fo.predictor,
                                scale.epochs * 2, rng);
    const double r = eval_init(*joint, scaler, targets, scale.eval_tasks);
    t.add_row({"joint supervised", eval::fmt(r)});
    std::printf("  %-22s rmse %.4f\n", "joint supervised", r);
  }
  {
    tensor::Rng rng(8);
    nn::TransformerRegressor random_init(fo.predictor, rng);
    const double r =
        eval_init(random_init, scaler, targets, scale.eval_tasks);
    t.add_row({"none (random init)", eval::fmt(r)});
    std::printf("  %-22s rmse %.4f\n", "none (random init)", r);
  }

  std::printf("\n%s\n", t.render().c_str());
  return 0;
}
