#include "bench_common.hpp"

#include <chrono>

namespace metadse::bench {

double pretrain_or_load(core::MetaDseFramework& fw, const std::string& path) {
  if (fw.load_checkpoint(path)) {
    std::printf("[checkpoint] loaded %s\n", path.c_str());
    return 0.0;
  }
  std::printf("[checkpoint] %s absent: pre-training (this is the slow part; "
              "later benches reuse it)...\n",
              path.c_str());
  const auto t0 = std::chrono::steady_clock::now();
  fw.pretrain();
  const auto t1 = std::chrono::steady_clock::now();
  fw.save_checkpoint(path);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  std::printf("[checkpoint] pre-trained in %.1fs, saved %s\n", secs,
              path.c_str());
  return secs;
}

void pooled_training_set(const std::vector<data::Dataset>& sources,
                         const data::Dataset& support,
                         data::TargetMetric metric, size_t per_source,
                         size_t support_replication, uint64_t seed,
                         baselines::FeatureMatrix& x, std::vector<float>& y) {
  tensor::Rng rng(seed);
  x.clear();
  y.clear();
  for (const auto& src : sources) {
    for (size_t j = 0; j < per_source && j < src.size(); ++j) {
      const auto& s = src.samples[rng.uniform_index(src.size())];
      x.push_back(s.features);
      y.push_back(data::target_of(s, metric).front());
    }
  }
  for (size_t r = 0; r < support_replication; ++r) {
    for (const auto& s : support.samples) {
      x.push_back(s.features);
      y.push_back(data::target_of(s, metric).front());
    }
  }
}

}  // namespace metadse::bench
