// Engine microbenchmarks (google-benchmark): throughput of the substrates
// the reproduction is built on — tensor ops, attention, the transformer
// predictor, the analytical simulator, and tree fitting. Not a paper
// artifact; used to track performance regressions of the library itself.
#include <benchmark/benchmark.h>

#include <cmath>

#include "arch/design_space.hpp"
#include "baselines/ensembles.hpp"
#include "core/parallel.hpp"
#include "data/dataset.hpp"
#include "explore/explorer.hpp"
#include "meta/maml.hpp"
#include "meta/wam.hpp"
#include "nn/optim.hpp"
#include "nn/plan.hpp"
#include "nn/transformer.hpp"
#include "tensor/guard.hpp"
#include "tensor/ops.hpp"
#include "tensor/quant.hpp"
#include "workload/spec_suite.hpp"

using namespace metadse;

namespace {

void BM_MatmulSquare(benchmark::State& state) {
  const size_t n = state.range(0);
  tensor::Rng rng(1);
  auto a = tensor::Tensor::randn({n, n}, rng);
  auto b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatmulSquare)->Arg(32)->Arg(64)->Arg(128);

void BM_AttentionForward(benchmark::State& state) {
  tensor::Rng rng(2);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  auto x = tensor::Tensor::randn({16, 24, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.forward(x).data().data());
  }
}
BENCHMARK(BM_AttentionForward);

void BM_TransformerForwardBackward(benchmark::State& state) {
  tensor::Rng rng(3);
  nn::TransformerConfig cfg{.n_tokens = 24, .d_model = 32, .n_heads = 4,
                            .n_layers = 2, .d_ff = 64, .n_outputs = 1};
  nn::TransformerRegressor model(cfg, rng);
  const size_t batch = state.range(0);
  auto x = tensor::Tensor::randn({batch, 24}, rng);
  auto y = tensor::Tensor::randn({batch, 1}, rng);
  tensor::Rng fwd(0);
  for (auto _ : state) {
    model.zero_grad();
    auto loss = tensor::mse_loss(model.forward(x, fwd, true), y);
    loss.backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TransformerForwardBackward)->Arg(5)->Arg(45);

// -- inference fast path ------------------------------------------------------
//
// BM_TransformerPredictOne is the seed's grad-mode single-point forward (the
// "before" of the fast-path work); the NoGrad/Batch variants are the paths
// the DSE loop actually runs now. tools/bench_report.py turns the JSON output
// into BENCH_engine.json.

nn::TransformerConfig predict_cfg() {
  return {.n_tokens = 24, .d_model = 32, .n_heads = 4,
          .n_layers = 2, .d_ff = 64, .n_outputs = 1};
}

void BM_TransformerPredictOne(benchmark::State& state) {
  tensor::Rng rng(11);
  nn::TransformerRegressor model(predict_cfg(), rng);
  std::vector<float> features(24);
  for (auto& f : features) f = rng.uniform();
  auto x = tensor::Tensor::from_vector({1, 24}, features);
  tensor::Rng fwd(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, fwd).data().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformerPredictOne);

void BM_TransformerPredictOneNoGrad(benchmark::State& state) {
  tensor::Rng rng(11);
  nn::TransformerRegressor model(predict_cfg(), rng);
  std::vector<float> features(24);
  for (auto& f : features) f = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_one(features).front());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransformerPredictOneNoGrad);

void BM_TransformerPredictBatch(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  tensor::Rng rng(12);
  nn::TransformerRegressor model(predict_cfg(), rng);
  tensor::Rng fwd(0);
  auto x = tensor::Tensor::uniform({batch, 24}, rng, 0.0F, 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward(x, fwd).data().data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TransformerPredictBatch)->Arg(1)->Arg(16)->Arg(128);

void BM_TransformerPredictBatchNoGrad(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  tensor::Rng rng(12);
  nn::TransformerRegressor model(predict_cfg(), rng);
  std::vector<std::vector<float>> rows(batch);
  for (auto& r : rows) {
    r.resize(24);
    for (auto& v : r) v = rng.uniform();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(rows).front().front());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TransformerPredictBatchNoGrad)->Arg(1)->Arg(16)->Arg(128);

// -- reduced-precision predict tier ------------------------------------------
//
// The same no-grad batched forward served from the bf16 / int8 plan variants
// (DESIGN.md §15). Calibration is captured once before timing, exactly as
// adapt_to does in production; the timed region is the steady-state quantized
// predict_batch. Names contain "PredictBatch" so the CI benchmark-smoke
// filter picks these up alongside the fp32 arms they are compared against.

void quant_predict_bench(benchmark::State& state,
                         tensor::quant::Precision prec) {
  const size_t batch = static_cast<size_t>(state.range(0));
  tensor::Rng rng(12);
  nn::TransformerRegressor model(predict_cfg(), rng);
  std::vector<std::vector<float>> rows(batch);
  std::vector<float> flat;
  for (auto& r : rows) {
    r.resize(24);
    for (auto& v : r) v = rng.uniform();
    flat.insert(flat.end(), r.begin(), r.end());
  }
  if (!nn::plan::capture_calibration(model, flat.data(), batch)) {
    state.SkipWithError("calibration capture failed (plan not compilable)");
    return;
  }
  tensor::quant::PrecisionModeGuard guard(prec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict_batch(rows).front().front());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}

void BM_TransformerPredictBatchQuantInt8(benchmark::State& state) {
  quant_predict_bench(state, tensor::quant::Precision::kInt8);
}
BENCHMARK(BM_TransformerPredictBatchQuantInt8)->Arg(1)->Arg(16)->Arg(128);

void BM_TransformerPredictBatchQuantBf16(benchmark::State& state) {
  quant_predict_bench(state, tensor::quant::Precision::kBf16);
}
BENCHMARK(BM_TransformerPredictBatchQuantBf16)->Arg(1)->Arg(16)->Arg(128);

void BM_ExplorerBatchedEval(benchmark::State& state) {
  const size_t eval_batch = static_cast<size_t>(state.range(0));
  const auto& space = arch::DesignSpace::table1();
  tensor::Rng rng(13);
  nn::TransformerRegressor model(predict_cfg(), rng);
  explore::BatchEvaluator eval =
      [&](const std::vector<arch::Config>& batch) {
        std::vector<std::vector<float>> feats;
        feats.reserve(batch.size());
        for (const auto& c : batch) feats.push_back(space.normalize(c));
        const auto preds = model.predict_batch(feats);
        std::vector<explore::Objective> objs;
        objs.reserve(batch.size());
        for (size_t i = 0; i < batch.size(); ++i) {
          objs.push_back({static_cast<double>(preds[i].front()),
                          static_cast<double>(i)});
        }
        return objs;
      };
  explore::EvolutionaryExplorer explorer({.initial_samples = 32,
                                          .iterations = 96, .seed = 7,
                                          .eval_batch = eval_batch});
  for (auto _ : state) {
    benchmark::DoNotOptimize(explorer.explore(space, eval).size());
  }
  state.SetItemsProcessed(state.iterations() * explorer.budget());
}
BENCHMARK(BM_ExplorerBatchedEval)->Arg(1)->Arg(16)->Arg(128);

void BM_CpuModelSimulate(benchmark::State& state) {
  workload::SpecSuite suite;
  const auto& wl = suite.by_name("605.mcf_s").base();
  sim::CpuModel model;
  arch::CpuConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.simulate(cfg, wl).ipc);
  }
}
BENCHMARK(BM_CpuModelSimulate);

void BM_DatasetPointPhaseWeighted(benchmark::State& state) {
  workload::SpecSuite suite;
  const auto& space = arch::DesignSpace::table1();
  data::DatasetGenerator gen(space);
  const auto& wl = suite.by_name("605.mcf_s");
  tensor::Rng rng(5);
  const auto c = space.random_config(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.evaluate(c, wl).first);
  }
}
BENCHMARK(BM_DatasetPointPhaseWeighted);

void BM_GbrtFit(benchmark::State& state) {
  tensor::Rng rng(6);
  baselines::FeatureMatrix x;
  std::vector<float> y;
  for (int i = 0; i < 400; ++i) {
    std::vector<float> row(24);
    for (auto& v : row) v = rng.uniform();
    y.push_back(row[0] * 2.0F + row[5] - row[9]);
    x.push_back(std::move(row));
  }
  baselines::GbrtOptions opts;
  opts.n_rounds = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    baselines::Gbrt model(opts);
    model.fit(x, y);
    benchmark::DoNotOptimize(model.predict(x[0]));
  }
}
BENCHMARK(BM_GbrtFit)->Arg(30)->Arg(120);

void BM_WamAdaptTenSteps(benchmark::State& state) {
  tensor::Rng rng(7);
  nn::TransformerConfig cfg{.n_tokens = 24, .d_model = 32, .n_heads = 4,
                            .n_layers = 2, .d_ff = 64, .n_outputs = 1};
  nn::TransformerRegressor model(cfg, rng);
  auto x = tensor::Tensor::uniform({10, 24}, rng, 0.0F, 1.0F);
  auto y = tensor::Tensor::randn({10, 1}, rng);
  auto mask = tensor::Tensor::full({24, 24}, 1.0F);
  meta::AdaptOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(meta::wam_adapt(model, mask, x, y, opts));
  }
}
BENCHMARK(BM_WamAdaptTenSteps);

// -- training fast path -------------------------------------------------------
//
// The MAML half of the engine: one inner-loop step (forward + backward +
// clip + SGD), a full K-shot adapt_clone call, and a whole meta-training
// epoch (below, in the threads sweep). tools/bench_report.py pairs these
// against a pre-fast-path baseline binary to report the training speedups
// in BENCH_engine.json.

void BM_MamlInnerStep(benchmark::State& state) {
  metadse::set_threads(static_cast<size_t>(state.range(0)));
  tensor::Rng rng(14);
  nn::TransformerRegressor model(predict_cfg(), rng);
  auto clone = model.clone();
  const auto params = clone->parameters();
  auto x = tensor::Tensor::uniform({5, 24}, rng, 0.0F, 1.0F);
  auto y = tensor::Tensor::randn({5, 1}, rng);
  nn::Sgd inner(params, 1e-2F);
  tensor::Rng fwd(0);
  // The inner-loop fast path: the first iteration captures the step's tape
  // (eager + trace), every later iteration replays it without rebuilding the
  // autodiff graph. Weights stay bitwise identical to the eager loop.
  nn::plan::TapePlan tape;
  for (auto _ : state) {
    inner.zero_grad();
    float lv = 0.0F;
    if (!tape.step(*clone, x, y, fwd, lv)) {
      auto loss = tensor::mse_loss(clone->forward(x, fwd, true), y);
      loss.backward();
      lv = loss.item();
    }
    tensor::clip_global_grad_norm(params, 10.0F);
    inner.step();
    benchmark::DoNotOptimize(lv);
  }
  state.SetItemsProcessed(state.iterations());
  metadse::set_threads(1);
}
BENCHMARK(BM_MamlInnerStep)->Arg(1)->Arg(2)->Arg(8);

void BM_MamlAdaptClone(benchmark::State& state) {
  metadse::set_threads(static_cast<size_t>(state.range(0)));
  tensor::Rng rng(15);
  nn::TransformerRegressor model(predict_cfg(), rng);
  auto sx = tensor::Tensor::uniform({5, 24}, rng, 0.0F, 1.0F);
  auto sy = tensor::Tensor::randn({5, 1}, rng);
  for (auto _ : state) {
    auto adapted = meta::MamlTrainer::adapt_clone(model, sx, sy, 5, 1e-2F);
    benchmark::DoNotOptimize(adapted.get());
  }
  state.SetItemsProcessed(state.iterations());
  metadse::set_threads(1);
}
BENCHMARK(BM_MamlAdaptClone)->Arg(1)->Arg(2)->Arg(8);

// -- thread-pool scaling sweeps ---------------------------------------------
//
// The speedup story of the parallel subsystem: the same GEMM / MAML-epoch
// work at pool widths 1/2/4/8. Results are bitwise identical across the
// sweep (see tests/test_parallel_equivalence.cpp); only wall-clock should
// move. Emit machine-readable numbers with --benchmark_format=json.

void BM_MatmulThreadsSweep(benchmark::State& state) {
  metadse::set_threads(static_cast<size_t>(state.range(0)));
  const size_t n = 256;
  tensor::Rng rng(8);
  auto a = tensor::Tensor::randn({n, n}, rng);
  auto b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
  metadse::set_threads(1);
}
BENCHMARK(BM_MatmulThreadsSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MamlEpochThreadsSweep(benchmark::State& state) {
  metadse::set_threads(static_cast<size_t>(state.range(0)));
  constexpr size_t kFeatures = 8;
  std::vector<data::Dataset> train;
  for (uint64_t w = 0; w < 2; ++w) {
    data::Dataset ds;
    ds.workload = "synthetic";
    tensor::Rng rng(w + 1);
    for (size_t i = 0; i < 200; ++i) {
      data::Sample s;
      s.features.resize(kFeatures);
      for (auto& f : s.features) f = rng.uniform();
      s.ipc = std::sin(3.14F * s.features[0]) + 0.5F * s.features[1];
      ds.samples.push_back(std::move(s));
    }
    train.push_back(std::move(ds));
  }
  meta::MamlOptions opts;
  opts.epochs = 1;
  opts.tasks_per_workload = 8;
  opts.support = 5;
  opts.query = 20;
  opts.inner_steps = 3;
  opts.meta_batch = 4;
  opts.val_tasks_per_workload = 0;
  nn::TransformerConfig cfg{.n_tokens = kFeatures, .d_model = 16,
                            .n_heads = 2, .n_layers = 1, .d_ff = 32,
                            .n_outputs = 1};
  for (auto _ : state) {
    meta::MamlTrainer trainer(cfg, opts);
    trainer.train(train, {});
    benchmark::DoNotOptimize(trainer.trace().back().train_meta_loss);
  }
  state.SetItemsProcessed(state.iterations() * opts.tasks_per_workload * 2);
  metadse::set_threads(1);
}
BENCHMARK(BM_MamlEpochThreadsSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
