// Synthetic traffic harness for the serving core: thousands of interleaved
// sessions with open-loop arrival (the driver never waits for completions,
// so overload actually builds a backlog instead of self-throttling). The
// session executor is a deterministic sleeper — service cost is a pure hash
// of the session id — so the harness measures queueing, admission,
// degradation, and shutdown behaviour, not simulator throughput, and runs
// in seconds on a single-core CI box.
//
//   bench_serve [--sessions N] [--out BENCH_serve.json]
//
// Three sleeper scenarios share one traffic shape:
//   nominal      arrival ~0.6x service capacity; nothing sheds or degrades
//   overload_2x  arrival ~2x capacity with shed-oldest admission, load-aware
//                degradation, and per-session deadlines; the queue stays
//                bounded and the server sheds/degrades instead of growing
//   overload_4x  arrival past what degradation can absorb; the shed-oldest
//                and deadline-at-dequeue paths carry the excess
//
// Four coalescing scenarios then model predict-bound sessions: every
// surrogate forward costs a fixed launch overhead plus a per-point charge on
// one serial model lane (the inline-scheduled fused predictor). The
// *_coalesce_off arms pay the launch per 4-row call; the *_coalesce_on arms
// route the same calls through a shared BatchCoalescer, which amortizes the
// launch across sessions — BENCH_serve.json records p50/p99 and the fused
// GEMM-size ratio (mean fused batch points / one session's rows-per-call).
//
// Exit is nonzero when any scenario violates the accounting invariant
// (submitted == every terminal bucket summed), overflows its queue bound, or
// — for the 2x coalescing arm — fails to fuse more than one session's worth
// of rows per batch on average.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "explore/guarded.hpp"
#include "serve/coalesce.hpp"
#include "serve/server.hpp"

using namespace metadse;

namespace {

/// Deterministic per-session service cost: 2..9 ms, hash of the id.
size_t service_cost_ms(uint64_t id) {
  uint64_t h = id * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 33;
  return 2 + static_cast<size_t>(h % 8);
}

/// The synthetic session: sleeps its service cost in 500us slices, honouring
/// the same cooperative-cancellation contract as the real DSE loop (budget
/// cancel/exhaustion -> ExplorationAborted, server stop -> StopRequested).
/// A session forced onto the baseline rung costs a quarter of the surrogate
/// price — the degradation ladder's whole point.
serve::ExecResult synthetic_session(const serve::SessionRequest& request,
                                    const serve::ExecContext& ctx) {
  size_t cost_ms = service_cost_ms(request.id);
  serve::ExecResult out;
  if (ctx.start_level == explore::DegradeLevel::kBaseline) {
    cost_ms = std::max<size_t>(1, cost_ms / 4);
    out.degraded = true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(cost_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (ctx.budget->cancelled() || ctx.budget->exhausted()) {
      throw explore::ExplorationAborted(
          "synthetic session aborted: budget gone");
    }
    if (ctx.stop_requested && ctx.stop_requested()) {
      throw explore::StopRequested("synthetic session stopped");
    }
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  ctx.budget->charge(cost_ms);
  return out;
}

// -- predict-bound sessions for the coalescing scenarios ----------------------

constexpr size_t kPredictRounds = 4;    ///< surrogate calls per session
constexpr size_t kRowsPerCall = 4;      ///< rows per surrogate call
constexpr size_t kLaunchUs = 2000;      ///< fixed cost per fused forward
constexpr size_t kPerPointUs = 10;      ///< marginal cost per row

/// One serial model lane: the fused predictor runs the inline schedule, so
/// every forward — coalesced or not — funnels through one mutex and costs
/// launch + per-point. Coalescing wins exactly by amortizing the launch
/// across sessions riding the same fused call.
struct PredictLane {
  std::mutex m;

  std::vector<float> run(const serve::BatchCoalescer::Rows& rows) {
    std::lock_guard<std::mutex> lk(m);
    std::this_thread::sleep_for(std::chrono::microseconds(
        kLaunchUs + kPerPointUs * rows.size()));
    std::vector<float> out;
    out.reserve(rows.size());
    for (const auto& r : rows) {
      float acc = 0.0F;
      for (float v : r) acc = acc * 2.0F + v;
      out.push_back(acc);
    }
    return out;
  }
};

/// A predict-bound session: kPredictRounds surrogate calls of kRowsPerCall
/// rows each, through the coalescer when one is wired in. Honors the same
/// cooperative contract as the sleeper — budget gone mid-wait aborts the
/// session without perturbing the batches other sessions ride in.
serve::ExecResult predict_session(const serve::SessionRequest& request,
                                  const serve::ExecContext& ctx,
                                  PredictLane& lane,
                                  serve::BatchCoalescer* coal) {
  serve::ExecResult out;
  size_t rounds = kPredictRounds;
  if (ctx.start_level == explore::DegradeLevel::kBaseline) {
    rounds = 1;  // the cheap rung skips most surrogate calls
    out.degraded = true;
  }
  const auto wake = [&ctx] {
    return ctx.budget->cancelled() || ctx.budget->exhausted();
  };
  for (size_t round = 0; round < rounds; ++round) {
    if (wake()) {
      throw explore::ExplorationAborted("predict session aborted: budget gone");
    }
    if (ctx.stop_requested && ctx.stop_requested()) {
      throw explore::StopRequested("predict session stopped");
    }
    serve::BatchCoalescer::Rows rows(kRowsPerCall);
    for (size_t k = 0; k < kRowsPerCall; ++k) {
      rows[k] = {static_cast<float>(request.id), static_cast<float>(round),
                 static_cast<float>(k)};
    }
    const auto t0 = std::chrono::steady_clock::now();
    try {
      if (coal != nullptr) {
        coal->predict(request.id, std::move(rows), wake);
      } else {
        lane.run(rows);
      }
    } catch (const serve::CoalesceCancelled&) {
      throw explore::ExplorationAborted(
          "predict session aborted: budget gone while waiting in the "
          "coalescer");
    }
    // Wait-in-coalescer is part of the attempt's wall-clock: charged.
    ctx.budget->charge(static_cast<size_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return out;
}

struct ScenarioResult {
  std::string name;
  serve::ServerStats stats;
  double wall_s = 0.0;
  double throughput_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double shed_rate = 0.0;          ///< (shed + rejected) / submitted
  double degraded_fraction = 0.0;  ///< degraded / ok
  size_t queue_capacity = 0;
  bool coalesce_on = false;
  double mean_batch_points = 0.0;  ///< mean fused GEMM rows (off: per-call)
  double gemm_size_ratio = 0.0;    ///< mean_batch_points / kRowsPerCall
  bool invariant_ok = false;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

/// Open-loop drive: a submitter thread issues @p sessions requests at a
/// fixed @p arrival_us cadence regardless of completions, then the server
/// drains and every future is harvested.
ScenarioResult run_scenario(const std::string& name,
                            const serve::ServeOptions& options,
                            size_t sessions, size_t arrival_us,
                            serve::SessionExecutor executor,
                            serve::BatchCoalescer* coal = nullptr) {
  serve::ServerCore server(options, std::move(executor));
  if (coal != nullptr) {
    server.set_coalesce_stats([coal] { return coal->stats(); });
  }
  std::vector<std::future<serve::SessionResult>> futures;
  futures.reserve(sessions);

  const auto start = std::chrono::steady_clock::now();
  std::thread driver([&] {
    for (uint64_t id = 0; id < sessions; ++id) {
      serve::SessionRequest req;
      req.id = id;
      req.workload = "synthetic";
      req.seed = id;
      futures.push_back(server.submit(std::move(req)));
      if (arrival_us > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(arrival_us));
      }
    }
  });
  driver.join();
  server.stop(serve::ServerCore::StopMode::kDrain);
  const double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - start)
          .count();

  ScenarioResult r;
  r.name = name;
  r.wall_s = wall_s;
  r.queue_capacity = options.queue_capacity;
  std::vector<double> latencies;  // total_ms of kOk sessions
  for (auto& fut : futures) {
    const serve::SessionResult res = fut.get();
    if (res.status == serve::SessionStatus::kOk) {
      latencies.push_back(static_cast<double>(res.total_ms));
    }
  }
  r.stats = server.stats();
  const auto& s = r.stats;
  r.invariant_ok = s.submitted == s.ok + s.rejected + s.shed + s.deadline +
                                      s.stopped + s.failed &&
                   s.queue_high_water <= options.queue_capacity;
  r.throughput_per_s =
      wall_s > 0 ? static_cast<double>(s.ok) / wall_s : 0.0;
  r.p50_ms = percentile(latencies, 0.50);
  r.p99_ms = percentile(latencies, 0.99);
  r.shed_rate = s.submitted > 0 ? static_cast<double>(s.shed + s.rejected) /
                                      static_cast<double>(s.submitted)
                                : 0.0;
  r.degraded_fraction =
      s.ok > 0 ? static_cast<double>(s.degraded) / static_cast<double>(s.ok)
               : 0.0;
  if (coal != nullptr) {
    r.coalesce_on = true;
    const serve::CoalesceStats cs = coal->stats();
    r.mean_batch_points = cs.mean_batch_points();
  } else {
    r.mean_batch_points = static_cast<double>(kRowsPerCall);
  }
  r.gemm_size_ratio =
      r.mean_batch_points / static_cast<double>(kRowsPerCall);
  return r;
}

/// One coalescing arm: predict-bound sessions against a fresh model lane,
/// with or without a shared cross-session coalescer in front of it.
ScenarioResult run_coalesce_scenario(const std::string& name,
                                     const serve::ServeOptions& options,
                                     size_t sessions, size_t arrival_us,
                                     bool coalesce_on) {
  PredictLane lane;
  std::unique_ptr<serve::BatchCoalescer> coal;
  if (coalesce_on) {
    serve::CoalesceOptions copts;
    copts.max_batch = 64;
    copts.wait_ticks = 2;
    copts.tick_ms = 1;
    coal = std::make_unique<serve::BatchCoalescer>(
        copts,
        [&lane](const serve::BatchCoalescer::Rows& rows) {
          return lane.run(rows);
        });
  }
  auto executor = [&lane, c = coal.get()](const serve::SessionRequest& req,
                                          const serve::ExecContext& ctx) {
    return predict_session(req, ctx, lane, c);
  };
  return run_scenario(name, options, sessions, arrival_us, executor,
                      coal.get());
}

void write_json(std::FILE* f, const std::vector<ScenarioResult>& results) {
  std::fprintf(f, "{\n  \"scenarios\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const auto& s = r.stats;
    std::fprintf(f,
                 "    \"%s\": {\n"
                 "      \"submitted\": %zu,\n"
                 "      \"ok\": %zu,\n"
                 "      \"rejected\": %zu,\n"
                 "      \"shed\": %zu,\n"
                 "      \"deadline\": %zu,\n"
                 "      \"stopped\": %zu,\n"
                 "      \"failed\": %zu,\n"
                 "      \"degraded\": %zu,\n"
                 "      \"queue_high_water\": %zu,\n"
                 "      \"queue_capacity\": %zu,\n"
                 "      \"watchdog_trips\": %zu,\n"
                 "      \"wall_s\": %.3f,\n"
                 "      \"throughput_per_s\": %.1f,\n"
                 "      \"p50_ms\": %.1f,\n"
                 "      \"p99_ms\": %.1f,\n"
                 "      \"shed_rate\": %.4f,\n"
                 "      \"degraded_fraction\": %.4f,\n"
                 "      \"coalesce_on\": %s,\n"
                 "      \"coalesced_batches\": %zu,\n"
                 "      \"coalesced_points\": %zu,\n"
                 "      \"mean_batch_points\": %.2f,\n"
                 "      \"gemm_size_ratio\": %.2f,\n"
                 "      \"invariant_ok\": %s\n"
                 "    }%s\n",
                 r.name.c_str(), s.submitted, s.ok, s.rejected, s.shed,
                 s.deadline, s.stopped, s.failed, s.degraded,
                 s.queue_high_water, r.queue_capacity, s.watchdog_trips,
                 r.wall_s, r.throughput_per_s, r.p50_ms, r.p99_ms,
                 r.shed_rate, r.degraded_fraction,
                 r.coalesce_on ? "true" : "false", s.coalesced_batches,
                 s.coalesced_points, r.mean_batch_points, r.gemm_size_ratio,
                 r.invariant_ok ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  size_t sessions = 1200;
  std::string out = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--sessions N] [--out FILE.json]\n");
      return 2;
    }
  }

  // Mean service cost is 5.5 ms; 8 workers give ~1450 sessions/s capacity.
  std::vector<ScenarioResult> results;

  // Nominal: ~0.6x capacity, reject-on-full (nothing should reject).
  serve::ServeOptions nominal;
  nominal.replicas = 8;
  nominal.workers = 8;
  nominal.queue_capacity = 64;
  nominal.admission = serve::AdmissionPolicy::kReject;
  nominal.degrade_at = 1.0;  // disabled
  nominal.watchdog_period_ms = 50;
  results.push_back(
      run_scenario("nominal", nominal, sessions, 1100, synthetic_session));

  // Overload: ~2x capacity. The bounded queue sheds its oldest sessions,
  // dispatch above 50% fill is forced onto the cheap rung, and sessions
  // stuck past their deadline budget are dropped at dequeue — backlog is
  // shed and degraded away instead of accumulating.
  serve::ServeOptions overload;
  overload.replicas = 8;
  overload.workers = 8;
  overload.queue_capacity = 64;
  overload.admission = serve::AdmissionPolicy::kShedOldest;
  overload.degrade_at = 0.5;
  overload.session_deadline_ms = 400;
  overload.watchdog_period_ms = 50;
  results.push_back(run_scenario("overload_2x", overload, sessions, 340,
                                 synthetic_session));

  // Spike: far past what degradation alone can absorb, so the
  // shed-oldest and deadline-at-dequeue paths carry the excess.
  serve::ServeOptions spike = overload;
  spike.session_deadline_ms = 150;
  results.push_back(run_scenario("overload_4x", spike, sessions, 90,
                                 synthetic_session));

  // Coalescing arms: predict-bound sessions against one serial model lane.
  // Uncoalesced capacity is ~1/(launch + 4 rows) calls per lane-second, so
  // 4100us arrival is ~2x that and 2050us is ~4x. The _on arms see the
  // exact same traffic; the coalescer amortizes the launch across sessions.
  const size_t coalesce_sessions = std::min<size_t>(sessions, 600);
  serve::ServeOptions fused = overload;
  fused.session_deadline_ms = 400;
  results.push_back(run_coalesce_scenario("overload_2x_coalesce_off", fused,
                                          coalesce_sessions, 4100, false));
  results.push_back(run_coalesce_scenario("overload_2x_coalesce_on", fused,
                                          coalesce_sessions, 4100, true));
  results.push_back(run_coalesce_scenario("overload_4x_coalesce_off", fused,
                                          coalesce_sessions, 2050, false));
  results.push_back(run_coalesce_scenario("overload_4x_coalesce_on", fused,
                                          coalesce_sessions, 2050, true));

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out.c_str());
    return 1;
  }
  write_json(f, results);
  std::fclose(f);

  bool ok = true;
  for (const auto& r : results) {
    std::printf(
        "%-24s %zu sessions in %.2fs: %.0f ok/s, p50 %.0fms p99 %.0fms, "
        "shed %.1f%%, degraded %.1f%%, queue high water %zu/%zu, "
        "gemm x%.1f%s\n",
        r.name.c_str(), r.stats.submitted, r.wall_s, r.throughput_per_s,
        r.p50_ms, r.p99_ms, 100.0 * r.shed_rate, 100.0 * r.degraded_fraction,
        r.stats.queue_high_water, r.queue_capacity, r.gemm_size_ratio,
        r.invariant_ok ? "" : "  INVARIANT VIOLATED");
    ok = ok && r.invariant_ok;
    if (r.coalesce_on && r.name.find("overload_2x") != std::string::npos &&
        r.mean_batch_points <= static_cast<double>(kRowsPerCall)) {
      std::printf("%-24s FUSION TOO SMALL: mean batch %.2f points <= one "
                  "session's %zu\n",
                  r.name.c_str(), r.mean_batch_points, kRowsPerCall);
      ok = false;
    }
  }
  std::printf("wrote %s\n", out.c_str());
  return ok ? 0 : 1;
}
