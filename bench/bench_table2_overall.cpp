// Reproduces paper Table II: overall RMSE / MAPE / EV for IPC and Power,
// averaged (mean ± 95% CI) across the five test datasets, for RF, GBRT,
// TrEnDSE, and MetaDSE. Expected shape: MetaDSE best on IPC everywhere;
// RF worst; Power differences smaller (power is a smoother target).
#include <cstdio>

#include "bench_common.hpp"

using namespace metadse;

namespace {

struct Row {
  std::vector<double> rmse, mape, ev;
  void absorb(const bench::ClassicEval& e) {
    rmse.insert(rmse.end(), e.rmse.begin(), e.rmse.end());
    mape.insert(mape.end(), e.mape.begin(), e.mape.end());
    ev.insert(ev.end(), e.ev.begin(), e.ev.end());
  }
};

std::string cell(const std::vector<double>& v) {
  return eval::format_mean_ci(eval::mean_ci(v), 4);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  std::printf("== Table II: overall results across the five test datasets "
              "(mean ± 95%% CI) ==\n");
  std::printf("(K=10 downstream support; %zu tasks per workload per metric)\n\n",
              scale.eval_tasks);

  const size_t K = 10;
  const size_t Q = 45;

  for (const auto metric :
       {data::TargetMetric::kIpc, data::TargetMetric::kPower}) {
    const char* metric_name =
        metric == data::TargetMetric::kIpc ? "IPC" : "Power";
    const std::string ckpt = metric == data::TargetMetric::kIpc
                                 ? "bench_metadse_ipc_s5.ckpt"
                                 : "bench_metadse_power_s5.ckpt";

    auto fw_opts = bench::framework_options(scale, metric, 5);
    core::MetaDseFramework fw(fw_opts);
    bench::pretrain_or_load(fw, ckpt);
    const auto sources =
        fw.datasets(fw.suite().names(workload::SplitRole::kTrain));

    Row rf_row, gbrt_row, trendse_row, meta_row;
    for (const auto& wl : bench::test_workloads()) {
      const auto& target = fw.dataset(wl);

      // RF / GBRT: naive transfer — pooled source samples + support.
      auto fit_trees = [&](auto make_model) {
        return bench::evaluate_classic(
            target, scale.eval_tasks, K, Q, metric, 201,
            [&](const data::Dataset& sup,
                const baselines::FeatureMatrix& qx) {
              baselines::FeatureMatrix x;
              std::vector<float> y;
              bench::pooled_training_set(sources, sup, metric, 60, 6, 7, x,
                                         y);
              auto model = make_model();
              model.fit(x, y);
              return model.predict_batch(qx);
            });
      };
      rf_row.absorb(fit_trees([] {
        return baselines::RandomForest(
            baselines::ForestOptions{.n_trees = 40});
      }));
      gbrt_row.absorb(fit_trees([] { return baselines::Gbrt(); }));

      trendse_row.absorb(bench::evaluate_classic(
          target, scale.eval_tasks, K, Q, metric, 202,
          [&](const data::Dataset& sup, const baselines::FeatureMatrix& qx) {
            baselines::TrEnDse model;
            model.fit(sources, sup, metric);
            return model.predict_batch(qx);
          }));

      tensor::Rng rng(203);
      for (const auto& e : fw.evaluate(wl, scale.eval_tasks, K, Q, true, rng)) {
        meta_row.rmse.push_back(e.rmse);
        meta_row.mape.push_back(e.mape);
        meta_row.ev.push_back(e.ev);
      }
    }

    std::printf("-- %s --\n", metric_name);
    eval::TextTable t({"model", "RMSE ↓", "MAPE ↓", "EV ↑"});
    t.add_row({"RF", cell(rf_row.rmse), cell(rf_row.mape), cell(rf_row.ev)});
    t.add_row({"GBRT", cell(gbrt_row.rmse), cell(gbrt_row.mape),
               cell(gbrt_row.ev)});
    t.add_row({"TrEnDSE", cell(trendse_row.rmse), cell(trendse_row.mape),
               cell(trendse_row.ev)});
    t.add_row({"MetaDSE", cell(meta_row.rmse), cell(meta_row.mape),
               cell(meta_row.ev)});
    std::printf("%s\n", t.render().c_str());
  }
  return 0;
}
