// Shared infrastructure for the reproduction benches: scale flags, shared
// pre-training checkpoints (so the bench suite does not re-train the same
// model), and the per-task evaluation protocol used across tables/figures.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/ensembles.hpp"
#include "baselines/trendse.hpp"
#include "core/metadse.hpp"
#include "eval/metrics.hpp"
#include "eval/table.hpp"

namespace metadse::bench {

/// Replication scale. The default keeps every bench in tens of seconds on a
/// single core while preserving the orderings; --paper-scale restores the
/// paper's counts (15 epochs x 200 tasks, 1000 eval tasks).
struct Scale {
  size_t epochs = 6;
  size_t tasks_per_workload = 40;
  size_t val_tasks = 6;
  size_t eval_tasks = 15;           ///< per test workload, cheap models
  size_t eval_tasks_expensive = 4;  ///< per test workload, transformer refits
  size_t samples_per_workload = 1200;
  bool paper = false;

  static Scale parse(int argc, char** argv) {
    // Benches are typically piped into tee; line-buffer stdout so progress
    // is visible as it happens.
    std::setvbuf(stdout, nullptr, _IOLBF, 0);
    Scale s;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--paper-scale") == 0) {
        s = Scale{.epochs = 15,
                  .tasks_per_workload = 200,
                  .val_tasks = 20,
                  .eval_tasks = 1000,
                  .eval_tasks_expensive = 50,
                  .samples_per_workload = 2000,
                  .paper = true};
      } else if (std::strcmp(argv[i], "--quick") == 0) {
        s = Scale{.epochs = 2,
                  .tasks_per_workload = 10,
                  .val_tasks = 3,
                  .eval_tasks = 6,
                  .eval_tasks_expensive = 2,
                  .samples_per_workload = 400};
      }
    }
    return s;
  }
};

/// Framework options for a given target metric and upstream support size.
inline core::FrameworkOptions framework_options(const Scale& s,
                                                data::TargetMetric target,
                                                size_t upstream_support) {
  core::FrameworkOptions o;
  o.samples_per_workload = s.samples_per_workload;
  o.maml.target = target;
  o.maml.epochs = s.epochs;
  o.maml.tasks_per_workload = s.tasks_per_workload;
  o.maml.val_tasks_per_workload = s.val_tasks;
  o.maml.support = upstream_support;
  o.maml.query = 45;
  return o;
}

/// Loads the checkpoint at @p path or pretrains and saves it. Returns the
/// wall-clock seconds spent pre-training (0 when loaded).
double pretrain_or_load(core::MetaDseFramework& fw, const std::string& path);

/// The five evaluation workloads (Table II caption).
inline std::vector<std::string> test_workloads() {
  return {"600.perlbench_s", "605.mcf_s", "620.omnetpp_s", "623.xalancbmk_s",
          "627.cam4_s"};
}

/// Per-task evaluation of a classical model: fit on (sources + support),
/// score on the query set. Returns metrics per task.
struct ClassicEval {
  std::vector<double> rmse, mape, ev;
};

/// Protocol shared by RF/GBRT/TrEnDSE rows: for each sampled task, assemble
/// the model's training set and score the query points.
template <typename FitPredict>
ClassicEval evaluate_classic(const data::Dataset& target, size_t n_tasks,
                             size_t support, size_t query,
                             data::TargetMetric metric, uint64_t seed,
                             FitPredict&& fit_predict) {
  data::TaskSampler sampler(target, support, query, metric);
  tensor::Rng rng(seed);
  ClassicEval out;
  for (size_t k = 0; k < n_tasks; ++k) {
    auto task = sampler.sample(rng);
    // Rebuild a Dataset view of the support set for the baseline API.
    data::Dataset sup;
    sup.workload = target.workload;
    const size_t n_feat = task.support_x.dim(1);
    for (size_t i = 0; i < task.support_x.dim(0); ++i) {
      data::Sample s;
      s.features.assign(
          task.support_x.data().begin() + i * n_feat,
          task.support_x.data().begin() + (i + 1) * n_feat);
      const float label = task.support_y.data()[i];
      if (metric == data::TargetMetric::kPower) {
        s.power = label;
      } else {
        s.ipc = label;
      }
      sup.samples.push_back(std::move(s));
    }
    // Query features as a matrix.
    baselines::FeatureMatrix qx;
    for (size_t i = 0; i < task.query_x.dim(0); ++i) {
      qx.emplace_back(task.query_x.data().begin() + i * n_feat,
                      task.query_x.data().begin() + (i + 1) * n_feat);
    }
    const std::vector<float> pred = fit_predict(sup, qx);
    out.rmse.push_back(eval::rmse(task.query_y.data(), pred));
    out.mape.push_back(eval::mape(task.query_y.data(), pred));
    out.ev.push_back(eval::explained_variance(task.query_y.data(), pred));
  }
  return out;
}

/// Pools random samples from every source dataset plus the (replicated)
/// support rows — the naive-transfer training set for the RF/GBRT rows.
void pooled_training_set(const std::vector<data::Dataset>& sources,
                         const data::Dataset& support,
                         data::TargetMetric metric, size_t per_source,
                         size_t support_replication, uint64_t seed,
                         baselines::FeatureMatrix& x, std::vector<float>& y);

}  // namespace metadse::bench
