// Ablation: end-to-end DSE utility. The paper's motivation is that a
// cheap-to-adapt surrogate lets a designer find better configurations with
// fewer simulations. This bench compares, at an equal *simulation* budget:
//   (a) MetaDSE flow: K sims -> adapt -> screen thousands of candidates with
//       the predictor -> validate only the predicted Pareto set,
//   (b) TrEnDSE flow: same, with the transfer-ensemble surrogate,
//   (c) random sampling: spend the whole budget on random simulations.
// Quality is measured against an oracle reference front (simulator-driven
// evolutionary search) via ADRS (lower = closer) and hypervolume.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "explore/explorer.hpp"

using namespace metadse;

int main(int argc, char** argv) {
  const auto scale = bench::Scale::parse(argc, argv);
  const size_t k_support = 10;
  const size_t validate_budget = 40;
  const size_t total_budget = k_support + validate_budget;
  const size_t screen_candidates = scale.paper ? 8000 : 3000;

  std::printf("== Ablation: DSE utility at a %zu-simulation budget ==\n\n",
              total_budget);

  auto fw_opts = bench::framework_options(scale, data::TargetMetric::kIpc, 5);
  core::MetaDseFramework fw(fw_opts);
  bench::pretrain_or_load(fw, "bench_metadse_ipc_s5.ckpt");
  const auto sources =
      fw.datasets(fw.suite().names(workload::SplitRole::kTrain));

  data::DatasetGenerator gen(fw.space());
  eval::TextTable t({"workload", "ADRS rand", "ADRS TrEnDSE", "ADRS MetaDSE",
                     "HV rand", "HV TrEnDSE", "HV MetaDSE"});

  std::vector<double> adrs_rand_all, adrs_tren_all, adrs_meta_all;
  for (const auto& wl_name : bench::test_workloads()) {
    const auto& wl = fw.suite().by_name(wl_name);
    auto oracle = [&](const arch::Config& c) {
      const auto [ipc, power] = gen.evaluate(c, wl);
      return explore::Objective{ipc, power};
    };

    // Reference front: simulator-driven evolutionary search (large budget).
    explore::EvolutionaryExplorer ref_explorer(
        {.initial_samples = 400, .iterations = 1100, .seed = 501});
    const auto reference = ref_explorer.explore(fw.space(), oracle);

    // Support set: the K simulations every surrogate flow gets.
    tensor::Rng rng(502);
    data::Dataset support = gen.generate(wl, k_support, rng);
    support.workload = wl_name;

    // Surrogate screening flow, shared by MetaDSE and TrEnDSE: screen with
    // the model (predicted IPC + analytical power, both simulation-free at
    // screening time in this harness), then validate the predicted front.
    auto surrogate_flow =
        [&](const std::function<float(const std::vector<float>&)>& predict) {
          explore::EvolutionaryExplorer screener(
              {.initial_samples = screen_candidates / 4,
               .iterations = screen_candidates * 3 / 4,
               .seed = 503});
          sim::PowerModel pm;
          sim::CpuModel cm;
          auto predicted = screener.explore(
              fw.space(), [&](const arch::Config& c) {
                const float ipc = predict(fw.space().normalize(c));
                const auto cfg = arch::to_cpu_config(fw.space(), c);
                const auto st = cm.simulate(cfg, wl.base());
                return explore::Objective{static_cast<double>(ipc),
                                          pm.evaluate(cfg, st).total};
              });
          // Validate the most promising predicted points in the simulator.
          explore::ParetoArchive measured;
          for (const auto& s : support.samples) {
            measured.insert(s.config,
                            {s.ipc, s.power});  // the K support sims count
          }
          size_t used = 0;
          for (const auto& e : predicted.entries()) {
            if (used++ >= validate_budget) break;
            measured.insert(e.config, oracle(e.config));
          }
          return measured;
        };

    // (a) MetaDSE.
    const auto adapted = fw.adapt_to(support);
    const auto meta_front = surrogate_flow(
        [&](const std::vector<float>& f) { return adapted.predict(f); });

    // (b) TrEnDSE.
    baselines::TrEnDse trendse;
    trendse.fit(sources, support, data::TargetMetric::kIpc);
    const auto tren_front = surrogate_flow(
        [&](const std::vector<float>& f) { return trendse.predict(f); });

    // (c) Random sampling with the full budget.
    tensor::Rng rrng(504);
    const auto rand_front =
        explore::random_search(fw.space(), oracle, total_budget, rrng);

    const auto ref_objs = reference.objectives();
    const double a_rand = explore::adrs(ref_objs, rand_front.objectives());
    const double a_tren = explore::adrs(ref_objs, tren_front.objectives());
    const double a_meta = explore::adrs(ref_objs, meta_front.objectives());
    const explore::Objective hv_ref{0.0, 40.0};
    t.add_row({wl_name, eval::fmt(a_rand, 3), eval::fmt(a_tren, 3),
               eval::fmt(a_meta, 3),
               eval::fmt(rand_front.hypervolume(hv_ref), 1),
               eval::fmt(tren_front.hypervolume(hv_ref), 1),
               eval::fmt(meta_front.hypervolume(hv_ref), 1)});
    adrs_rand_all.push_back(a_rand);
    adrs_tren_all.push_back(a_tren);
    adrs_meta_all.push_back(a_meta);
    std::printf("  %-18s ADRS rand %.3f / TrEnDSE %.3f / MetaDSE %.3f\n",
                wl_name.c_str(), a_rand, a_tren, a_meta);
  }
  std::printf("\n%s\n", t.render().c_str());
  std::printf("mean ADRS: random %.3f, TrEnDSE %.3f, MetaDSE %.3f "
              "(lower = closer to the oracle front)\n",
              eval::mean_ci(adrs_rand_all).mean,
              eval::mean_ci(adrs_tren_all).mean,
              eval::mean_ci(adrs_meta_all).mean);
  return 0;
}
